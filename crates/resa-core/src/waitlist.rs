//! An indexed arrival-order queue with O(1) removal.
//!
//! Both the EASY backfilling event loop (`resa-algos`) and the simulation
//! engine's waiting set (`resa-sim`) iterate a queue in arrival order while
//! removing arbitrary elements as jobs start. A `Vec` makes each removal an
//! `O(n)` shift and (in the engine's case) forced a fresh `Vec<Job>` clone at
//! every decision point; [`WaitList`] is a doubly-linked list threaded through
//! two index arrays instead, giving O(1) `push_back`/`remove`/`contains` with
//! zero steady-state allocation.

/// Sentinel index meaning "none".
const NIL: u32 = u32::MAX;

/// Doubly-linked arrival-order list over the indices `0..capacity`.
///
/// Every index may be present at most once; `push_back` appends in arrival
/// order and `remove` unlinks in O(1). Iteration visits present indices in
/// insertion order and is safe against removing the element just visited
/// (grab [`WaitList::next_of`] before removing).
#[derive(Debug, Clone)]
pub struct WaitList {
    next: Vec<u32>,
    prev: Vec<u32>,
    present: Vec<bool>,
    head: u32,
    tail: u32,
    len: usize,
}

impl WaitList {
    /// An empty list accepting indices `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity < NIL as usize, "WaitList capacity overflow");
        WaitList {
            next: vec![NIL; capacity],
            prev: vec![NIL; capacity],
            present: vec![false; capacity],
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Grow the accepted index range to `0..capacity` (no-op if already that
    /// large). Long-running callers (the `resa serve` waiting set, whose job
    /// catalog grows with every submission) use this instead of rebuilding.
    pub fn ensure_capacity(&mut self, capacity: usize) {
        assert!(capacity < NIL as usize, "WaitList capacity overflow");
        if capacity > self.next.len() {
            self.next.resize(capacity, NIL);
            self.prev.resize(capacity, NIL);
            self.present.resize(capacity, false);
        }
    }

    /// Current index capacity (length of the backing arrays). Exposed so
    /// bounded-memory harnesses can assert that live state stays O(active
    /// jobs) — a raw job id used as the index would drag this to the maximum
    /// id ever seen, which is why streaming callers queue compact *slots*
    /// and remap sparse external ids before they reach the list.
    pub fn capacity(&self) -> usize {
        self.next.len()
    }

    /// Shift every present index down by `delta` and shrink the accepted
    /// range accordingly — the compaction path taken after a prefix of the
    /// caller's catalog is retired (so old index `i` now lives at
    /// `i - delta`). Arrival order is preserved. Retirement is rare relative
    /// to queue operations, so this rebuilds the links in O(capacity).
    ///
    /// # Panics
    /// Panics if any present index is smaller than `delta`.
    pub fn rebase(&mut self, delta: usize) {
        if delta == 0 {
            return;
        }
        let order: Vec<usize> = self.iter().collect();
        let new_cap = self.next.len().saturating_sub(delta);
        self.next.clear();
        self.next.resize(new_cap, NIL);
        self.prev.clear();
        self.prev.resize(new_cap, NIL);
        self.present.clear();
        self.present.resize(new_cap, false);
        self.head = NIL;
        self.tail = NIL;
        self.len = 0;
        for index in order {
            assert!(index >= delta, "rebase past a still-queued index");
            self.push_back(index - delta);
        }
    }

    /// Number of present indices.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `index` is currently in the list.
    pub fn contains(&self, index: usize) -> bool {
        self.present.get(index).copied().unwrap_or(false)
    }

    /// First (oldest) present index.
    pub fn front(&self) -> Option<usize> {
        (self.head != NIL).then_some(self.head as usize)
    }

    /// The index after `index` in arrival order.
    ///
    /// # Panics
    /// Panics in debug builds if `index` is not present.
    pub fn next_of(&self, index: usize) -> Option<usize> {
        debug_assert!(self.present[index]);
        let n = self.next[index];
        (n != NIL).then_some(n as usize)
    }

    /// Append `index` at the back.
    ///
    /// # Panics
    /// Panics if `index` is already present or out of range.
    pub fn push_back(&mut self, index: usize) {
        assert!(!self.present[index], "index already queued");
        let i = index as u32;
        self.present[index] = true;
        self.prev[index] = self.tail;
        self.next[index] = NIL;
        if self.tail != NIL {
            self.next[self.tail as usize] = i;
        } else {
            self.head = i;
        }
        self.tail = i;
        self.len += 1;
    }

    /// Insert `index` at the front, ahead of every queued element — the
    /// priority-boost path of deadline admission (`resa-sim`), where a job
    /// whose due date the speculative bound already misses jumps the queue.
    ///
    /// # Panics
    /// Panics if `index` is already present or out of range.
    pub fn push_front(&mut self, index: usize) {
        assert!(!self.present[index], "index already queued");
        let i = index as u32;
        self.present[index] = true;
        self.next[index] = self.head;
        self.prev[index] = NIL;
        if self.head != NIL {
            self.prev[self.head as usize] = i;
        } else {
            self.tail = i;
        }
        self.head = i;
        self.len += 1;
    }

    /// Unlink `index`. Returns whether it was present.
    pub fn remove(&mut self, index: usize) -> bool {
        if !self.contains(index) {
            return false;
        }
        let (p, n) = (self.prev[index], self.next[index]);
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        } else {
            self.tail = p;
        }
        self.present[index] = false;
        self.prev[index] = NIL;
        self.next[index] = NIL;
        self.len -= 1;
        true
    }

    /// Iterate the present indices in arrival order.
    pub fn iter(&self) -> WaitListIter<'_> {
        WaitListIter {
            list: self,
            cursor: self.head,
        }
    }
}

/// Iterator over a [`WaitList`] in arrival order.
#[derive(Debug)]
pub struct WaitListIter<'a> {
    list: &'a WaitList,
    cursor: u32,
}

impl Iterator for WaitListIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.cursor == NIL {
            return None;
        }
        let current = self.cursor as usize;
        self.cursor = self.list.next[current];
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_iterate_remove() {
        let mut l = WaitList::with_capacity(5);
        assert!(l.is_empty());
        for i in [2, 0, 4] {
            l.push_back(i);
        }
        assert_eq!(l.len(), 3);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![2, 0, 4]);
        assert_eq!(l.front(), Some(2));
        assert!(l.contains(4) && !l.contains(1));

        assert!(l.remove(0));
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![2, 4]);
        assert!(!l.remove(0), "double remove is a no-op");
        assert!(l.remove(2));
        assert_eq!(l.front(), Some(4));
        assert!(l.remove(4));
        assert!(l.is_empty());
        assert_eq!(l.front(), None);
    }

    #[test]
    fn push_front_jumps_the_queue() {
        let mut l = WaitList::with_capacity(5);
        l.push_front(0); // front onto an empty list behaves like push_back
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![0]);
        l.push_back(1);
        l.push_front(2);
        l.push_front(3); // the latest boost is frontmost
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![3, 2, 0, 1]);
        assert_eq!(l.front(), Some(3));
        assert!(l.remove(3));
        assert_eq!(l.front(), Some(2));
        assert!(l.remove(0));
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![2, 1]);
    }

    #[test]
    fn reinsertion_after_removal() {
        let mut l = WaitList::with_capacity(3);
        l.push_back(1);
        l.push_back(2);
        l.remove(1);
        l.push_back(1); // now behind 2
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![2, 1]);
        assert_eq!(l.next_of(2), Some(1));
        assert_eq!(l.next_of(1), None);
    }

    #[test]
    fn ensure_capacity_grows_in_place() {
        let mut l = WaitList::with_capacity(2);
        l.push_back(1);
        l.ensure_capacity(5);
        l.push_back(4);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![1, 4]);
        assert!(!l.contains(3));
        l.ensure_capacity(3); // shrinking is a no-op
        assert!(l.contains(4));
    }

    #[test]
    #[should_panic(expected = "already queued")]
    fn double_push_panics() {
        let mut l = WaitList::with_capacity(2);
        l.push_back(0);
        l.push_back(0);
    }

    #[test]
    fn rebase_shifts_and_shrinks() {
        let mut l = WaitList::with_capacity(10);
        for i in [7, 4, 9] {
            l.push_back(i);
        }
        l.rebase(3);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![4, 1, 6]);
        assert_eq!(l.capacity(), 7);
        assert_eq!(l.front(), Some(4));
        assert!(l.contains(6) && !l.contains(7));
        // Rebasing by zero is a no-op.
        l.rebase(0);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![4, 1, 6]);
        // The freed range is really gone: re-growing starts from the new cap.
        l.ensure_capacity(8);
        l.push_back(7);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![4, 1, 6, 7]);
    }

    #[test]
    #[should_panic(expected = "rebase past a still-queued index")]
    fn rebase_past_live_index_panics() {
        let mut l = WaitList::with_capacity(4);
        l.push_back(1);
        l.rebase(2);
    }
}
