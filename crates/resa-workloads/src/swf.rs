//! A minimal Standard-Workload-Format-style trace codec.
//!
//! The paper's motivation is production batch schedulers, whose workloads are
//! traditionally distributed in the Standard Workload Format (SWF) of the
//! Parallel Workloads Archive. No real trace ships with the paper, so this
//! module provides (a) a reader/writer for the subset of SWF fields the model
//! needs — job id, submit time, run time, number of processors — and (b) a
//! synthetic trace writer so experiments and examples can round-trip through
//! the same file format a real deployment would use.
//!
//! Format: one job per line, `;`-prefixed comment lines, whitespace-separated
//! fields `job_id submit_time run_time processors` (a strict subset of the
//! 18-field SWF records; extra fields on a line are ignored so genuine SWF
//! files parse too).

use crate::gzip::{is_gzip, GzipReader};
use resa_core::prelude::*;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

/// Errors raised while parsing a trace.
///
/// Every variant carries the 1-based line number of the offending record, so
/// a malformed multi-megabyte archive trace points straight at the culprit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwfError {
    /// A record line does not have the four required fields (truncated line).
    MissingFields {
        /// 1-based line number of the truncated record.
        line: usize,
    },
    /// A field is not a valid integer at all.
    BadField {
        /// 1-based line number of the malformed record.
        line: usize,
        /// Name of the malformed field.
        field: &'static str,
    },
    /// A field parsed as a *negative* integer. Genuine SWF files use `-1`
    /// as a "missing value" sentinel; the rigid model has no meaningful
    /// interpretation for a negative runtime or width, so such records are
    /// rejected explicitly instead of being folded into [`SwfError::BadField`].
    NegativeField {
        /// 1-based line number of the record carrying the negative value.
        line: usize,
        /// Name of the negative field.
        field: &'static str,
        /// The offending value.
        value: i64,
    },
    /// A job has zero processors or zero runtime (invalid in the rigid model).
    DegenerateJob {
        /// 1-based line number of the degenerate record.
        line: usize,
    },
    /// A job requests more processors than the cluster has. Raised when the
    /// caller provides a cluster size, or when the trace's own `MaxProcs`
    /// header declares one.
    WidthExceedsCluster {
        /// 1-based line number of the oversized record.
        line: usize,
        /// Processors requested by the job.
        width: u64,
        /// Processors the cluster actually has.
        machines: u32,
    },
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwfError::MissingFields { line } => {
                write!(f, "line {line}: expected at least 4 fields")
            }
            SwfError::BadField { line, field } => {
                write!(f, "line {line}: field '{field}' is not an integer")
            }
            SwfError::NegativeField { line, field, value } => {
                write!(
                    f,
                    "line {line}: field '{field}' is negative ({value}); \
                     the rigid model requires non-negative values"
                )
            }
            SwfError::DegenerateJob { line } => {
                write!(f, "line {line}: job has zero processors or zero runtime")
            }
            SwfError::WidthExceedsCluster {
                line,
                width,
                machines,
            } => {
                write!(
                    f,
                    "line {line}: job requests {width} processors but the cluster has {machines}"
                )
            }
        }
    }
}

impl std::error::Error for SwfError {}

/// A parsed trace: the jobs plus the metadata recovered from the header
/// comments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwfTrace {
    /// Jobs in file order, re-numbered densely.
    pub jobs: Vec<Job>,
    /// The `; MaxProcs: <n>` header value, when present — the cluster size
    /// the trace was recorded on.
    pub max_procs: Option<u32>,
}

/// Parse a trace from its textual form. Job ids are re-numbered densely in
/// file order (the original id is not preserved, matching how the simulator
/// identifies jobs).
///
/// Negative runtimes/widths (the SWF "missing value" sentinel `-1`) are
/// rejected with a line-numbered [`SwfError::NegativeField`], and if the
/// trace carries a `; MaxProcs:` header, any job wider than it is rejected
/// with [`SwfError::WidthExceedsCluster`]. Use [`parse_trace_for_cluster`]
/// to enforce a specific cluster size instead.
pub fn parse_trace(text: &str) -> Result<Vec<Job>, SwfError> {
    parse_trace_full(text, None).map(|t| t.jobs)
}

/// [`parse_trace`] with an explicit cluster size: jobs wider than `machines`
/// are rejected with a line-numbered [`SwfError::WidthExceedsCluster`]
/// (overriding any `MaxProcs` header).
pub fn parse_trace_for_cluster(text: &str, machines: u32) -> Result<Vec<Job>, SwfError> {
    parse_trace_full(text, Some(machines)).map(|t| t.jobs)
}

/// The full parser behind [`parse_trace`] / [`parse_trace_for_cluster`]:
/// returns the jobs *and* the header metadata. The width cap is `cluster`
/// when given, else the `; MaxProcs:` header when present, else unlimited.
///
/// This is now a thin collect over [`SwfStream`]; the streaming parser is
/// the single source of truth for SWF validation.
pub fn parse_trace_full(text: &str, cluster: Option<u32>) -> Result<SwfTrace, SwfError> {
    let mut stream = SwfStream::new(text.as_bytes(), cluster);
    let mut jobs = Vec::new();
    for item in stream.by_ref() {
        match item {
            Ok(job) => jobs.push(job),
            Err(SwfReadError::Swf(err)) => return Err(err),
            // Reading from an in-memory slice cannot fail.
            Err(SwfReadError::Io(err)) => unreachable!("in-memory read failed: {err}"),
        }
    }
    Ok(SwfTrace {
        jobs,
        max_procs: stream.max_procs(),
    })
}

/// Error from the streaming parser: either the underlying reader failed
/// (file truncated mid-download, gzip corruption, …) or a record is invalid.
#[derive(Debug)]
pub enum SwfReadError {
    /// The underlying byte stream failed.
    Io(std::io::Error),
    /// A record failed validation (carries the 1-based line number).
    Swf(SwfError),
}

impl std::fmt::Display for SwfReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwfReadError::Io(err) => write!(f, "trace read error: {err}"),
            SwfReadError::Swf(err) => err.fmt(f),
        }
    }
}

impl std::error::Error for SwfReadError {}

impl From<SwfError> for SwfReadError {
    fn from(err: SwfError) -> Self {
        SwfReadError::Swf(err)
    }
}

/// Incremental, line-at-a-time SWF parser over any [`BufRead`].
///
/// Yields jobs one by one with exactly the validation and dense re-numbering
/// of [`parse_trace_full`] (which is implemented as a collect over this
/// type), but holds only the current line in memory — a multi-million-line
/// archive trace streams in O(1) space. Comment lines are skipped inline and
/// the `; MaxProcs:` header is recovered as it is encountered; query it with
/// [`SwfStream::max_procs`] (its value at any point reflects the headers
/// *seen so far*, matching the batch parser's cap semantics, which apply the
/// latest header to each subsequent record).
///
/// After the first error the stream is fused: further calls return `None`.
pub struct SwfStream<R: BufRead> {
    reader: R,
    line: String,
    line_no: usize,
    cluster: Option<u32>,
    max_procs: Option<u32>,
    next_id: usize,
    done: bool,
}

impl<R: BufRead> SwfStream<R> {
    /// Start streaming records from `reader`, capping widths at `cluster`
    /// when given (else at the trace's own `; MaxProcs:` header, else
    /// unlimited).
    pub fn new(reader: R, cluster: Option<u32>) -> Self {
        SwfStream {
            reader,
            line: String::new(),
            line_no: 0,
            cluster,
            max_procs: None,
            next_id: 0,
            done: false,
        }
    }

    /// The `; MaxProcs:` header value seen so far, if any.
    pub fn max_procs(&self) -> Option<u32> {
        self.max_procs
    }

    /// Number of job records yielded so far (also the next dense id).
    pub fn jobs_seen(&self) -> usize {
        self.next_id
    }

    /// Parse one raw line. `Ok(None)` means the line was blank or a comment.
    /// Free-standing over disjoint fields so the caller can keep the line
    /// buffer borrowed.
    fn step(
        line: usize,
        raw: &str,
        cluster: Option<u32>,
        max_procs: &mut Option<u32>,
        next_id: &mut usize,
    ) -> Result<Option<Job>, SwfError> {
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with(';') || trimmed.starts_with('#') {
            // Recover the `MaxProcs` header the SWF standard puts in the
            // comment preamble (`; MaxProcs: 128`).
            let comment = trimmed.trim_start_matches([';', '#']).trim();
            if let Some(rest) = comment.strip_prefix("MaxProcs:") {
                *max_procs = rest.trim().parse::<u32>().ok().or(*max_procs);
            }
            return Ok(None);
        }
        // The field-count check comes before any field parse, so a short
        // line always reports `MissingFields` even when its present fields
        // are also malformed (matching the batch parser's error priority).
        if trimmed.split_whitespace().nth(3).is_none() {
            return Err(SwfError::MissingFields { line });
        }
        let mut fields = trimmed.split_whitespace();
        let mut parse = |name: &'static str| -> Result<u64, SwfError> {
            let raw = fields.next().expect("field count checked above");
            let value = raw
                .parse::<i64>()
                .map_err(|_| SwfError::BadField { line, field: name })?;
            u64::try_from(value).map_err(|_| SwfError::NegativeField {
                line,
                field: name,
                value,
            })
        };
        let _orig_id = parse("job_id")?;
        let submit = parse("submit_time")?;
        let run_time = parse("run_time")?;
        let procs = parse("processors")?;
        if run_time == 0 || procs == 0 {
            return Err(SwfError::DegenerateJob { line });
        }
        let cap = cluster.or(*max_procs);
        if let Some(machines) = cap {
            if procs > machines as u64 {
                return Err(SwfError::WidthExceedsCluster {
                    line,
                    width: procs,
                    machines,
                });
            }
        }
        let width = u32::try_from(procs).map_err(|_| SwfError::WidthExceedsCluster {
            line,
            width: procs,
            machines: u32::MAX,
        })?;
        let id = *next_id;
        *next_id += 1;
        Ok(Some(Job::released_at(id, width, run_time, submit)))
    }
}

impl<R: BufRead> Iterator for SwfStream<R> {
    type Item = Result<Job, SwfReadError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            self.line.clear();
            match self.reader.read_line(&mut self.line) {
                Ok(0) => {
                    self.done = true;
                    return None;
                }
                Ok(_) => {}
                Err(err) => {
                    self.done = true;
                    return Some(Err(SwfReadError::Io(err)));
                }
            }
            self.line_no += 1;
            match Self::step(
                self.line_no,
                &self.line,
                self.cluster,
                &mut self.max_procs,
                &mut self.next_id,
            ) {
                Ok(Some(job)) => return Some(Ok(job)),
                Ok(None) => continue,
                Err(err) => {
                    self.done = true;
                    return Some(Err(SwfReadError::Swf(err)));
                }
            }
        }
    }
}

/// A boxed line reader over either a plain or a gzip-compressed trace file.
pub type TraceReader = Box<dyn BufRead>;

/// Open a trace file for streaming, transparently inflating gzip members
/// (sniffed by the two magic bytes, not the file name).
pub fn open_trace_reader(path: &Path) -> std::io::Result<TraceReader> {
    let file = std::fs::File::open(path)?;
    let mut buffered = BufReader::new(file);
    let head = buffered.fill_buf()?;
    if is_gzip(head) {
        Ok(Box::new(BufReader::new(GzipReader::new(buffered))))
    } else {
        Ok(Box::new(buffered))
    }
}

/// Open a streaming SWF parser over `path` (plain or gzipped).
pub fn open_trace(path: &Path, cluster: Option<u32>) -> std::io::Result<SwfStream<TraceReader>> {
    Ok(SwfStream::new(open_trace_reader(path)?, cluster))
}

/// Read a trace file fully into a string, inflating gzip transparently —
/// the materialized counterpart of [`open_trace`].
pub fn read_trace_text(path: &Path) -> std::io::Result<String> {
    let mut text = String::new();
    open_trace_reader(path)?.read_to_string(&mut text)?;
    Ok(text)
}

/// Serialize jobs to the textual trace form (with a header comment).
pub fn write_trace(jobs: &[Job], cluster_machines: u32) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; resa-sched synthetic trace");
    let _ = writeln!(out, "; MaxProcs: {cluster_machines}");
    let _ = writeln!(out, "; fields: job_id submit_time run_time processors");
    for job in jobs {
        let _ = writeln!(
            out,
            "{} {} {} {}",
            job.id.0,
            job.release.ticks(),
            job.duration.ticks(),
            job.width
        );
    }
    out
}

/// Convert a list of trace jobs (with release dates) into an off-line
/// RESASCHEDULING instance by dropping the release dates — the paper's
/// off-line model considers all jobs available at time 0.
pub fn as_offline_instance(
    machines: u32,
    jobs: &[Job],
    reservations: Vec<Reservation>,
) -> Result<ResaInstance, resa_core::error::ModelError> {
    let offline: Vec<Job> = jobs
        .iter()
        .map(|j| Job::new(j.id.0, j.width.min(machines).max(1), j.duration))
        .collect();
    ResaInstance::new(machines, offline, reservations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let jobs = vec![
            Job::released_at(0usize, 4, 100u64, 0u64),
            Job::released_at(1usize, 16, 50u64, 30u64),
            Job::released_at(2usize, 1, 7u64, 31u64),
        ];
        let text = write_trace(&jobs, 32);
        let parsed = parse_trace(&text).unwrap();
        assert_eq!(parsed, jobs);
    }

    #[test]
    fn parses_comments_and_extra_fields() {
        let text = "; comment\n# other comment\n\n 3 10 20 4 extra fields ignored 9 9\n";
        let jobs = parse_trace(text).unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].id, JobId(0)); // re-numbered densely
        assert_eq!(jobs[0].release, Time(10));
        assert_eq!(jobs[0].duration, Dur(20));
        assert_eq!(jobs[0].width, 4);
    }

    #[test]
    fn reports_errors_with_line_numbers() {
        assert_eq!(
            parse_trace("1 2 3").unwrap_err(),
            SwfError::MissingFields { line: 1 }
        );
        assert_eq!(
            parse_trace("; ok\n1 2 x 4").unwrap_err(),
            SwfError::BadField {
                line: 2,
                field: "run_time"
            }
        );
        assert_eq!(
            parse_trace("1 0 5 0").unwrap_err(),
            SwfError::DegenerateJob { line: 1 }
        );
        assert_eq!(
            parse_trace("1 0 0 5").unwrap_err(),
            SwfError::DegenerateJob { line: 1 }
        );
    }

    #[test]
    fn rejects_negative_runtime_and_width() {
        // `-1` is the SWF missing-value sentinel: rejected, with the line.
        assert_eq!(
            parse_trace("; header\n1 0 -1 4").unwrap_err(),
            SwfError::NegativeField {
                line: 2,
                field: "run_time",
                value: -1
            }
        );
        assert_eq!(
            parse_trace("1 0 5 -3").unwrap_err(),
            SwfError::NegativeField {
                line: 1,
                field: "processors",
                value: -3
            }
        );
        assert_eq!(
            parse_trace("1 -7 5 3").unwrap_err(),
            SwfError::NegativeField {
                line: 1,
                field: "submit_time",
                value: -7
            }
        );
    }

    #[test]
    fn rejects_truncated_line() {
        // A record cut mid-line (e.g. an interrupted download).
        assert_eq!(
            parse_trace("1 0 5 2\n2 10 7").unwrap_err(),
            SwfError::MissingFields { line: 2 }
        );
    }

    #[test]
    fn rejects_width_beyond_cluster() {
        let text = "1 0 5 8\n2 3 5 64\n";
        assert_eq!(
            parse_trace_for_cluster(text, 32).unwrap_err(),
            SwfError::WidthExceedsCluster {
                line: 2,
                width: 64,
                machines: 32
            }
        );
        // Within the cluster: both jobs parse.
        assert_eq!(parse_trace_for_cluster(text, 64).unwrap().len(), 2);
    }

    #[test]
    fn maxprocs_header_caps_widths() {
        let text = "; MaxProcs: 16\n1 0 5 8\n2 3 5 24\n";
        let err = parse_trace(text).unwrap_err();
        assert_eq!(
            err,
            SwfError::WidthExceedsCluster {
                line: 3,
                width: 24,
                machines: 16
            }
        );
        // An explicit cluster size overrides the header.
        assert_eq!(parse_trace_for_cluster(text, 32).unwrap().len(), 2);
        // The header is surfaced through the full parse.
        let full = parse_trace_full("; MaxProcs: 16\n1 0 5 8\n", None).unwrap();
        assert_eq!(full.max_procs, Some(16));
        assert_eq!(full.jobs.len(), 1);
    }

    #[test]
    fn error_display() {
        assert!(SwfError::MissingFields { line: 3 }
            .to_string()
            .contains("3"));
        assert!(SwfError::BadField {
            line: 1,
            field: "processors"
        }
        .to_string()
        .contains("processors"));
    }

    #[test]
    fn offline_instance_conversion() {
        let jobs = vec![
            Job::released_at(0usize, 4, 10u64, 5u64),
            Job::released_at(1usize, 64, 3u64, 9u64), // wider than the cluster: clamped
        ];
        let inst = as_offline_instance(16, &jobs, Vec::new()).unwrap();
        assert_eq!(inst.n_jobs(), 2);
        assert!(inst.jobs().iter().all(|j| j.release == Time::ZERO));
        assert_eq!(inst.jobs()[1].width, 16);
    }

    #[test]
    fn empty_trace() {
        assert!(parse_trace("").unwrap().is_empty());
        assert!(parse_trace("; nothing\n").unwrap().is_empty());
    }

    /// A reader that hands out at most `chunk` bytes per `read` call, to
    /// prove the streaming parser is agnostic to input chunking.
    struct ChunkReader<'a> {
        data: &'a [u8],
        pos: usize,
        chunk: usize,
    }

    impl std::io::Read for ChunkReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn stream_is_chunking_agnostic() {
        let text = "; MaxProcs: 32\n1 0 5 8\n\n# note\n2 3 7 32\n9 10 1 1";
        let whole = parse_trace_full(text, None).unwrap();
        for chunk in 1..=7usize {
            let reader = std::io::BufReader::with_capacity(
                2,
                ChunkReader {
                    data: text.as_bytes(),
                    pos: 0,
                    chunk,
                },
            );
            let mut stream = SwfStream::new(reader, None);
            let jobs: Vec<Job> = stream.by_ref().map(|r| r.unwrap()).collect();
            assert_eq!(jobs, whole.jobs, "chunk size {chunk}");
            assert_eq!(stream.max_procs(), whole.max_procs);
            assert_eq!(stream.jobs_seen(), whole.jobs.len());
        }
    }

    #[test]
    fn stream_surfaces_errors_and_fuses() {
        let text = "1 0 5 2\n2 10 x 3\n3 20 5 2\n";
        let mut stream = SwfStream::new(text.as_bytes(), None);
        assert!(stream.next().unwrap().is_ok());
        match stream.next().unwrap() {
            Err(SwfReadError::Swf(err)) => assert_eq!(
                err,
                SwfError::BadField {
                    line: 2,
                    field: "run_time"
                }
            ),
            other => panic!("expected a parse error, got {other:?}"),
        }
        assert!(stream.next().is_none(), "stream must fuse after an error");
    }

    #[test]
    fn short_line_with_bad_field_still_reports_missing_fields() {
        // Error-priority pin: field count is checked before field syntax.
        assert_eq!(
            parse_trace("x 2 3").unwrap_err(),
            SwfError::MissingFields { line: 1 }
        );
    }

    #[test]
    fn open_trace_sniffs_gzip() {
        let dir = std::env::temp_dir().join(format!(
            "resa-swf-gz-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let text = "; MaxProcs: 8\n1 0 5 4\n2 3 7 8\n";
        let plain = dir.join("t.swf");
        let gzed = dir.join("t.swf.gz");
        std::fs::write(&plain, text).unwrap();
        crate::gzip::write_gz(&gzed, text.as_bytes()).unwrap();
        for path in [&plain, &gzed] {
            let jobs: Vec<Job> = open_trace(path, None)
                .unwrap()
                .map(|r| r.unwrap())
                .collect();
            assert_eq!(jobs.len(), 2, "{}", path.display());
            assert_eq!(read_trace_text(path).unwrap(), text);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
