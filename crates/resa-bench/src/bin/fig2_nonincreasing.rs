//! E2 / Figure 2 + Proposition 1: non-increasing reservations.
//!
//! LSRC on random non-increasing staircases stays within the
//! `2 − 1/m(C*_max)` guarantee, and the Proposition-1 transformation
//! (reservations → head-of-list rigid tasks) yields the same LSRC makespan.

use resa_analysis::prelude::*;

fn main() {
    let rows = figure2_series(&[8, 16, 32], 10, &[1, 2, 3, 4, 5]);
    let mut table = Table::new(
        "E2 / Figure 2 — LSRC under non-increasing reservations vs the 2 - 1/m(C*) bound",
        &[
            "m",
            "jobs",
            "m(C*)",
            "reference",
            "ref optimal",
            "LSRC",
            "LSRC (transformed)",
            "ratio",
            "bound",
        ],
    );
    for r in &rows {
        table.push_row(vec![
            r.machines.to_string(),
            r.jobs.to_string(),
            r.available_at_reference.to_string(),
            r.reference.to_string(),
            r.reference_is_optimal.to_string(),
            r.lsrc.to_string(),
            r.lsrc_transformed.to_string(),
            fmt_f64(r.ratio),
            fmt_f64(r.bound),
        ]);
    }
    resa_bench::emit("fig2_nonincreasing", &table, &rows);
    let violations = rows
        .iter()
        .filter(|r| r.reference_is_optimal && r.ratio > r.bound + 1e-9)
        .count();
    println!("Proposition-1 bound violations (against exact optima): {violations} (expected 0)");
}
