//! Throughput benchmarks of every scheduler on realistic workload sizes
//! (these are the "substrate" benchmarks: they time the algorithms
//! themselves rather than a figure pipeline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use resa_algos::prelude::*;
use resa_core::prelude::*;
use resa_workloads::prelude::*;

fn workload(machines: u32, n: usize, alpha: Alpha) -> ResaInstance {
    let jobs = FeitelsonWorkload::for_cluster(machines, n).generate(3);
    AlphaReservations {
        machines,
        alpha,
        count: 6,
        horizon: 5_000,
        max_duration: 400,
    }
    .instance(jobs, 3)
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedulers");
    for &n in &[100usize, 500, 2000] {
        let inst = workload(128, n, Alpha::HALF);
        group.throughput(Throughput::Elements(n as u64));
        for scheduler in resa_algos::all_schedulers() {
            group.bench_with_input(BenchmarkId::new(scheduler.name(), n), &inst, |b, inst| {
                b.iter(|| scheduler.makespan(inst))
            });
        }
    }
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    use resa_sim::prelude::*;
    let mut group = c.benchmark_group("online_simulator");
    for &n in &[200usize, 1000] {
        let jobs = FeitelsonWorkload::for_cluster(128, n)
            .with_arrivals(5)
            .generate(9);
        let inst = ResaInstance::new(128, jobs, Vec::new()).unwrap();
        let sim = Simulator::new(inst);
        group.bench_with_input(BenchmarkId::new("greedy", n), &sim, |b, sim| {
            b.iter(|| sim.run(&GreedyPolicy).metrics.makespan)
        });
        group.bench_with_input(BenchmarkId::new("easy", n), &sim, |b, sim| {
            b.iter(|| sim.run(&EasyPolicy).metrics.makespan)
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_algorithms, bench_simulator
}
criterion_main!(benches);
