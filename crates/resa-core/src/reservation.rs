//! Advance reservations and the unavailability function `U(t)`.
//!
//! A reservation `R_j` withdraws `q_j` processors from the cluster during the
//! half-open window `[r_j, r_j + p_j)`. The paper models the set of
//! reservations through the piecewise-constant *unavailability function*
//! `U(t) = Σ_{j running at t} q_j`; an instance is feasible iff
//! `∀t, U(t) ≤ m`.

use crate::time::{Dur, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a reservation inside an instance.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct ReservationId(pub usize);

impl fmt::Display for ReservationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl From<usize> for ReservationId {
    fn from(v: usize) -> Self {
        ReservationId(v)
    }
}

/// An advance reservation: `width` processors are unavailable during
/// `[start, start + duration)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Reservation {
    /// Reservation identifier, unique within an instance.
    pub id: ReservationId,
    /// Number of processors withdrawn (`q_j` in the paper).
    pub width: u32,
    /// Length of the reservation window (`p_j` in the paper), strictly positive.
    pub duration: Dur,
    /// Start of the reservation window (`r_j` in the paper).
    pub start: Time,
}

impl Reservation {
    /// Create a reservation.
    pub fn new(
        id: impl Into<ReservationId>,
        width: u32,
        duration: impl Into<Dur>,
        start: impl Into<Time>,
    ) -> Self {
        Reservation {
            id: id.into(),
            width,
            duration: duration.into(),
            start: start.into(),
        }
    }

    /// End of the reservation window (exclusive).
    #[inline]
    pub fn end(&self) -> Time {
        self.start + self.duration
    }

    /// Whether the reservation is active at time `t` (half-open window).
    #[inline]
    pub fn is_active_at(&self, t: Time) -> bool {
        self.start <= t && t < self.end()
    }

    /// Area (processor x time) withheld by the reservation.
    #[inline]
    pub fn area(&self) -> u128 {
        self.duration.area(self.width)
    }

    /// Whether the reservation respects the α-restriction
    /// `q_j ≤ (1 − α)·m` individually. Note the paper's restriction is on the
    /// *sum* of concurrent reservations; see
    /// [`crate::instance::ResaInstance::check_alpha_restricted`].
    pub fn respects_alpha(&self, alpha: crate::instance::Alpha, machines: u32) -> bool {
        // width ≤ (1 - num/denom) m  ⇔  width·denom ≤ (denom − num)·m
        (self.width as u64) * alpha.denom() <= (alpha.denom() - alpha.num()) * machines as u64
    }
}

impl fmt::Display for Reservation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}(q={}, [{}, {}))",
            self.id,
            self.width,
            self.start,
            self.end()
        )
    }
}

/// Compute the unavailability function `U(t)` of a set of reservations as a
/// sorted list of `(time, unavailable)` breakpoints. The value at a breakpoint
/// holds until the next breakpoint; the function is 0 before the first
/// breakpoint and after the last window ends.
pub fn unavailability_breakpoints(reservations: &[Reservation]) -> Vec<(Time, u32)> {
    if reservations.is_empty() {
        return vec![(Time::ZERO, 0)];
    }
    // Sweep line over start (+width) and end (-width) events.
    let mut events: Vec<(Time, i64)> = Vec::with_capacity(reservations.len() * 2);
    for r in reservations {
        events.push((r.start, r.width as i64));
        events.push((r.end(), -(r.width as i64)));
    }
    events.sort();
    let mut out: Vec<(Time, u32)> = vec![(Time::ZERO, 0)];
    let mut current: i64 = 0;
    let mut i = 0;
    while i < events.len() {
        let t = events[i].0;
        while i < events.len() && events[i].0 == t {
            current += events[i].1;
            i += 1;
        }
        debug_assert!(current >= 0, "sweep went negative");
        if out.last().map(|&(bt, _)| bt) == Some(t) {
            out.last_mut().unwrap().1 = current as u32;
        } else if out.last().map(|&(_, v)| v) != Some(current as u32) {
            out.push((t, current as u32));
        }
    }
    out
}

/// Maximum value of the unavailability function `U(t)`.
pub fn peak_unavailability(reservations: &[Reservation]) -> u32 {
    unavailability_breakpoints(reservations)
        .iter()
        .map(|&(_, u)| u)
        .max()
        .unwrap_or(0)
}

/// Whether the unavailability function is non-increasing over time, the
/// restriction studied in §4.1 of the paper (equivalently: availability
/// `m(t) = m − U(t)` is non-decreasing).
///
/// A set of reservations is non-increasing iff every value in the breakpoint
/// list is ≤ the previous one *and* the function starts at its maximum (i.e.
/// all reservations start at time 0 or are nested so that unavailability only
/// ever decreases).
pub fn is_nonincreasing(reservations: &[Reservation]) -> bool {
    let bps = unavailability_breakpoints(reservations);
    bps.windows(2).all(|w| w[1].1 <= w[0].1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(id: usize, width: u32, dur: u64, start: u64) -> Reservation {
        Reservation::new(id, width, dur, start)
    }

    #[test]
    fn reservation_window() {
        let res = r(0, 2, 5, 10);
        assert_eq!(res.end(), Time(15));
        assert!(res.is_active_at(Time(10)));
        assert!(res.is_active_at(Time(14)));
        assert!(!res.is_active_at(Time(15)));
        assert!(!res.is_active_at(Time(9)));
        assert_eq!(res.area(), 10);
    }

    #[test]
    fn empty_unavailability() {
        assert_eq!(unavailability_breakpoints(&[]), vec![(Time::ZERO, 0)]);
        assert_eq!(peak_unavailability(&[]), 0);
        assert!(is_nonincreasing(&[]));
    }

    #[test]
    fn single_reservation_breakpoints() {
        let bps = unavailability_breakpoints(&[r(0, 3, 4, 2)]);
        assert_eq!(bps, vec![(Time(0), 0), (Time(2), 3), (Time(6), 0)]);
        assert_eq!(peak_unavailability(&[r(0, 3, 4, 2)]), 3);
    }

    #[test]
    fn overlapping_reservations_sum() {
        let rs = [r(0, 3, 10, 0), r(1, 2, 4, 5)];
        let bps = unavailability_breakpoints(&rs);
        assert_eq!(
            bps,
            vec![(Time(0), 3), (Time(5), 5), (Time(9), 3), (Time(10), 0)]
        );
        assert_eq!(peak_unavailability(&rs), 5);
    }

    #[test]
    fn adjacent_reservations_do_not_overlap() {
        // [0,5) and [5,10): at t=5 only the second is active.
        let rs = [r(0, 4, 5, 0), r(1, 4, 5, 5)];
        assert_eq!(peak_unavailability(&rs), 4);
        let bps = unavailability_breakpoints(&rs);
        assert_eq!(bps, vec![(Time(0), 4), (Time(10), 0)]);
    }

    #[test]
    fn nonincreasing_detection() {
        // Staircase going down: 5 procs until 10, 2 procs until 20.
        let down = [r(0, 3, 10, 0), r(1, 2, 20, 0)];
        assert!(is_nonincreasing(&down));
        // A reservation starting later makes U increase.
        let up = [r(0, 2, 5, 3)];
        assert!(!is_nonincreasing(&up));
    }

    #[test]
    fn alpha_on_reservations() {
        use crate::instance::Alpha;
        // alpha = 1/2, m = 10 ⇒ reservations individually up to 5.
        let a = Alpha::new(1, 2).unwrap();
        assert!(r(0, 5, 1, 0).respects_alpha(a, 10));
        assert!(!r(0, 6, 1, 0).respects_alpha(a, 10));
    }

    #[test]
    fn display() {
        assert_eq!(r(1, 2, 3, 4).to_string(), "R1(q=2, [t4, t7))");
    }
}
