//! Rigid parallel jobs.
//!
//! In the parallel-tasks (rigid) model of the paper, each job `j` requires a
//! fixed number of processors `q_j` (its *width*) for a fixed duration `p_j`,
//! without preemption, on any subset of the cluster's processors
//! (non-contiguous allocation is allowed).

use crate::time::{Dur, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a job inside an instance. Ids are dense indices `0..n` in
/// instances built by [`crate::instance::ResaInstanceBuilder`], but the model
/// only requires uniqueness.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct JobId(pub usize);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "J{}", self.0)
    }
}

impl From<usize> for JobId {
    fn from(v: usize) -> Self {
        JobId(v)
    }
}

/// A rigid parallel job: `q_j` processors for `p_j` ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Job {
    /// Job identifier, unique within an instance.
    pub id: JobId,
    /// Number of processors required (`q_j` in the paper), `1 ≤ width ≤ m`.
    pub width: u32,
    /// Execution time (`p_j` in the paper), strictly positive.
    pub duration: Dur,
    /// Release date: the job cannot start before this time. The paper's
    /// off-line model has all jobs available at time 0; the on-line simulator
    /// (resa-sim) and the batch-doubling wrapper use non-zero release dates.
    pub release: Time,
}

impl Job {
    /// Create an off-line job (release date 0).
    pub fn new(id: impl Into<JobId>, width: u32, duration: impl Into<Dur>) -> Self {
        Job {
            id: id.into(),
            width,
            duration: duration.into(),
            release: Time::ZERO,
        }
    }

    /// Create a job released at `release`.
    pub fn released_at(
        id: impl Into<JobId>,
        width: u32,
        duration: impl Into<Dur>,
        release: impl Into<Time>,
    ) -> Self {
        Job {
            id: id.into(),
            width,
            duration: duration.into(),
            release: release.into(),
        }
    }

    /// Work (area) of the job: `p_j * q_j`.
    #[inline]
    pub fn work(&self) -> u128 {
        self.duration.area(self.width)
    }

    /// Completion time if the job starts at `start`.
    #[inline]
    pub fn completion_if_started_at(&self, start: Time) -> Time {
        start + self.duration
    }

    /// Whether the job fits within a cluster of `m` machines.
    #[inline]
    pub fn fits_in(&self, machines: u32) -> bool {
        self.width >= 1 && self.width <= machines
    }

    /// Whether the job respects the α-restriction `q_j ≤ α·m`.
    ///
    /// The comparison is done in exact integer arithmetic:
    /// `q_j ≤ α·m  ⇔  q_j·denom ≤ num·m` for `α = num/denom`.
    pub fn respects_alpha(&self, alpha: crate::instance::Alpha, machines: u32) -> bool {
        (self.width as u64) * alpha.denom() <= alpha.num() * machines as u64
    }
}

impl fmt::Display for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}(q={}, p={}, r={})",
            self.id, self.width, self.duration, self.release
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Alpha;

    #[test]
    fn job_construction() {
        let j = Job::new(3usize, 4, 10u64);
        assert_eq!(j.id, JobId(3));
        assert_eq!(j.width, 4);
        assert_eq!(j.duration, Dur(10));
        assert_eq!(j.release, Time::ZERO);
    }

    #[test]
    fn job_released_at() {
        let j = Job::released_at(1usize, 2, 5u64, 7u64);
        assert_eq!(j.release, Time(7));
        assert_eq!(j.completion_if_started_at(Time(7)), Time(12));
    }

    #[test]
    fn work_is_area() {
        let j = Job::new(0usize, 3, 7u64);
        assert_eq!(j.work(), 21);
    }

    #[test]
    fn fits_in_cluster() {
        let j = Job::new(0usize, 3, 1u64);
        assert!(j.fits_in(3));
        assert!(j.fits_in(8));
        assert!(!j.fits_in(2));
        let zero = Job::new(0usize, 0, 1u64);
        assert!(!zero.fits_in(8));
    }

    #[test]
    fn alpha_restriction_exact() {
        // alpha = 1/2, m = 10: jobs up to width 5 are allowed.
        let a = Alpha::new(1, 2).unwrap();
        assert!(Job::new(0usize, 5, 1u64).respects_alpha(a, 10));
        assert!(!Job::new(0usize, 6, 1u64).respects_alpha(a, 10));
        // alpha = 2/3, m = 9: widths up to 6.
        let a = Alpha::new(2, 3).unwrap();
        assert!(Job::new(0usize, 6, 1u64).respects_alpha(a, 9));
        assert!(!Job::new(0usize, 7, 1u64).respects_alpha(a, 9));
    }

    #[test]
    fn display_is_compact() {
        let j = Job::new(2usize, 4, 10u64);
        assert_eq!(j.to_string(), "J2(q=4, p=10, r=t0)");
    }

    #[test]
    fn job_id_ordering() {
        assert!(JobId(1) < JobId(2));
        let id: JobId = 5usize.into();
        assert_eq!(id.to_string(), "J5");
    }
}
