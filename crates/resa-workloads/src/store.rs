//! Checksum-pinned on-disk cache for archive traces.
//!
//! Real SWF archives (CTC, SDSC, KTH, …) are distributed as large gzipped
//! logs. This module gives the CLI a `trace:` reference scheme backed by a
//! local cache directory, so replays and sweeps name traces symbolically and
//! reproducibly:
//!
//! * `resa fetch <name> --from <path> [--sha256 <hex>]` imports a file into
//!   the cache (`$RESA_TRACE_CACHE`, defaulting to `~/.cache/resa/traces`),
//!   records its SHA-256 and size in a `.meta` sidecar, and verifies any
//!   pinned digest on the way in.
//! * A workload/trace argument of the form `trace:<name>` (optionally
//!   `trace:<name>@sha256:<hex>`) resolves through [`TraceStore::resolve`].
//!   A pinned digest is re-verified against the cached bytes at resolve
//!   time, so a corrupted or swapped cache entry fails loudly instead of
//!   silently changing the experiment.
//!
//! The container building this workspace is offline, so there is no URL
//! fetcher: "degrading gracefully to the cache" means a missing entry
//! reports [`StoreError::NotCached`] with the exact `resa fetch` invocation
//! that would populate it, and everything already cached keeps working.
//!
//! The SHA-256 implementation is vendored (FIPS 180-4, ~40 lines) for the
//! same reason the inflater in [`crate::gzip`] is: no new dependencies.

use std::fmt;
use std::io::Read;
use std::path::{Path, PathBuf};

/// SHA-256 of `data`, as 32 bytes.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut s = Sha256Stream::new();
    s.update(data);
    s.finish()
}

/// SHA-256 of a file, streamed in 64 KiB chunks, as a lowercase hex string.
pub fn sha256_file(path: &Path) -> std::io::Result<String> {
    let mut hasher = Sha256Stream::new();
    let mut file = std::fs::File::open(path)?;
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        let n = file.read(&mut buf)?;
        if n == 0 {
            break;
        }
        hasher.update(&buf[..n]);
    }
    Ok(to_hex(&hasher.finish()))
}

/// Incremental SHA-256 (same core as [`sha256`], block-buffered).
struct Sha256Stream {
    tail: Vec<u8>,
    len: u64,
    h: [u32; 8],
}

impl Sha256Stream {
    fn new() -> Self {
        Sha256Stream {
            tail: Vec::new(),
            len: 0,
            h: [
                0x6a09_e667,
                0xbb67_ae85,
                0x3c6e_f372,
                0xa54f_f53a,
                0x510e_527f,
                0x9b05_688c,
                0x1f83_d9ab,
                0x5be0_cd19,
            ],
        }
    }

    fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        self.tail.extend_from_slice(data);
        let full = self.tail.len() / 64 * 64;
        if full > 0 {
            let (blocks, rest) = self.tail.split_at(full);
            compress(&mut self.h, blocks);
            self.tail = rest.to_vec();
        }
    }

    fn finish(mut self) -> [u8; 32] {
        let bitlen = self.len.wrapping_mul(8);
        self.tail.push(0x80);
        while self.tail.len() % 64 != 56 {
            self.tail.push(0);
        }
        self.tail.extend_from_slice(&bitlen.to_be_bytes());
        let tail = std::mem::take(&mut self.tail);
        compress(&mut self.h, &tail);
        let mut out = [0u8; 32];
        for (i, word) in self.h.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

/// SHA-256 compression over whole 64-byte blocks.
fn compress(h: &mut [u32; 8], blocks: &[u8]) {
    const K: [u32; 64] = [
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
        0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
        0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
        0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
        0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
        0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
        0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
        0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
        0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
        0xc67178f2,
    ];
    let mut w = [0u32; 64];
    for block in blocks.chunks_exact(64) {
        for (t, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes(block[4 * t..4 * t + 4].try_into().unwrap());
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = *h;
        for t in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
        h[5] = h[5].wrapping_add(f);
        h[6] = h[6].wrapping_add(g);
        h[7] = h[7].wrapping_add(hh);
    }
}

/// Lowercase hex encoding.
pub fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Errors from the trace store.
#[derive(Debug)]
pub enum StoreError {
    /// A `trace:` reference or trace name is syntactically invalid.
    BadRef {
        /// The offending reference text.
        reference: String,
        /// Why it was rejected.
        reason: String,
    },
    /// The named trace is not in the cache (offline degradation: the error
    /// names the `resa fetch` command that would populate it).
    NotCached {
        /// The trace name that was looked up.
        name: String,
        /// The cache directory that was searched.
        cache: PathBuf,
    },
    /// The cached (or imported) bytes do not match the pinned digest.
    ChecksumMismatch {
        /// The trace name.
        name: String,
        /// The digest the reference pinned.
        expected: String,
        /// The digest actually computed over the bytes.
        actual: String,
    },
    /// Filesystem failure underneath the cache.
    Io(std::io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::BadRef { reference, reason } => {
                write!(f, "invalid trace reference '{reference}': {reason}")
            }
            StoreError::NotCached { name, cache } => write!(
                f,
                "trace '{name}' is not cached under {}; fetch it first with \
                 `resa fetch {name} --from <file>` (offline runs degrade to \
                 the cache, they never download)",
                cache.display()
            ),
            StoreError::ChecksumMismatch {
                name,
                expected,
                actual,
            } => write!(
                f,
                "trace '{name}' failed its checksum pin: expected sha256:{expected}, \
                 got sha256:{actual}"
            ),
            StoreError::Io(err) => write!(f, "trace cache I/O error: {err}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(err: std::io::Error) -> Self {
        StoreError::Io(err)
    }
}

/// A parsed `trace:<name>[@sha256:<hex>]` reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRef {
    /// Cache entry name (sanitized: `[A-Za-z0-9._-]`, no leading dot).
    pub name: String,
    /// Pinned SHA-256 digest (lowercase hex), if the reference carries one.
    pub sha256: Option<String>,
}

impl TraceRef {
    /// Whether `text` uses the `trace:` scheme at all.
    pub fn is_trace_ref(text: &str) -> bool {
        text.starts_with("trace:")
    }

    /// Parse a `trace:<name>[@sha256:<hex>]` reference.
    pub fn parse(text: &str) -> Result<TraceRef, StoreError> {
        let bad = |reason: &str| StoreError::BadRef {
            reference: text.to_string(),
            reason: reason.to_string(),
        };
        let rest = text
            .strip_prefix("trace:")
            .ok_or_else(|| bad("expected the 'trace:' scheme"))?;
        let (name, pin) = match rest.split_once('@') {
            Some((name, pin)) => (name, Some(pin)),
            None => (rest, None),
        };
        validate_name(name).map_err(|reason| bad(&reason))?;
        let sha256 = match pin {
            None => None,
            Some(pin) => {
                let hex = pin
                    .strip_prefix("sha256:")
                    .ok_or_else(|| bad("pin must use the form @sha256:<64 hex digits>"))?;
                if hex.len() != 64 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
                    return Err(bad("pin must be 64 hex digits"));
                }
                Some(hex.to_ascii_lowercase())
            }
        };
        Ok(TraceRef {
            name: name.to_string(),
            sha256,
        })
    }
}

/// Reject names that could escape the cache directory or collide with the
/// sidecar convention.
fn validate_name(name: &str) -> Result<(), String> {
    if name.is_empty() {
        return Err("trace name is empty".to_string());
    }
    if name.starts_with('.') {
        return Err("trace name must not start with '.'".to_string());
    }
    if !name
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
    {
        return Err("trace name may only contain [A-Za-z0-9._-]".to_string());
    }
    if name.ends_with(".meta") {
        return Err("trace name must not end with '.meta'".to_string());
    }
    Ok(())
}

/// A cached trace as reported by [`TraceStore::list`].
#[derive(Debug, Clone)]
pub struct CachedTrace {
    /// Entry name (use as `trace:<name>`).
    pub name: String,
    /// Recorded SHA-256 (lowercase hex).
    pub sha256: String,
    /// File size in bytes.
    pub size: u64,
}

/// The on-disk trace cache.
pub struct TraceStore {
    root: PathBuf,
}

impl TraceStore {
    /// Open the cache at an explicit directory (created lazily on import).
    pub fn at(root: PathBuf) -> TraceStore {
        TraceStore { root }
    }

    /// Open the default cache: `$RESA_TRACE_CACHE` if set, else
    /// `$HOME/.cache/resa/traces`, else `./.resa-trace-cache` as a last
    /// resort for HOME-less environments (CI sandboxes).
    pub fn open_default() -> TraceStore {
        let root = std::env::var_os("RESA_TRACE_CACHE")
            .map(PathBuf::from)
            .or_else(|| {
                std::env::var_os("HOME").map(|home| {
                    PathBuf::from(home)
                        .join(".cache")
                        .join("resa")
                        .join("traces")
                })
            })
            .unwrap_or_else(|| PathBuf::from(".resa-trace-cache"));
        TraceStore { root }
    }

    /// The cache directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    fn meta_path(&self, name: &str) -> PathBuf {
        self.root.join(format!("{name}.meta"))
    }

    /// Import `from` into the cache under `name`, verifying `expected_sha`
    /// (lowercase hex) when given — trust-on-first-use otherwise. Returns
    /// the digest recorded in the sidecar.
    pub fn import(
        &self,
        name: &str,
        from: &Path,
        expected_sha: Option<&str>,
    ) -> Result<String, StoreError> {
        validate_name(name).map_err(|reason| StoreError::BadRef {
            reference: name.to_string(),
            reason,
        })?;
        let actual = sha256_file(from)?;
        if let Some(expected) = expected_sha {
            let expected = expected.to_ascii_lowercase();
            if expected != actual {
                return Err(StoreError::ChecksumMismatch {
                    name: name.to_string(),
                    expected,
                    actual,
                });
            }
        }
        std::fs::create_dir_all(&self.root)?;
        let dest = self.entry_path(name);
        std::fs::copy(from, &dest)?;
        let size = std::fs::metadata(&dest)?.len();
        std::fs::write(
            self.meta_path(name),
            format!("sha256 {actual}\nsize {size}\n"),
        )?;
        Ok(actual)
    }

    /// Resolve a parsed reference to the cached file path, re-verifying the
    /// pin (if any) against the actual cached bytes.
    pub fn resolve(&self, r: &TraceRef) -> Result<PathBuf, StoreError> {
        let path = self.entry_path(&r.name);
        if !path.is_file() {
            return Err(StoreError::NotCached {
                name: r.name.clone(),
                cache: self.root.clone(),
            });
        }
        if let Some(expected) = &r.sha256 {
            let actual = sha256_file(&path)?;
            if &actual != expected {
                return Err(StoreError::ChecksumMismatch {
                    name: r.name.clone(),
                    expected: expected.clone(),
                    actual,
                });
            }
        }
        Ok(path)
    }

    /// Parse and resolve a `trace:` reference in one step.
    pub fn resolve_ref(&self, reference: &str) -> Result<PathBuf, StoreError> {
        self.resolve(&TraceRef::parse(reference)?)
    }

    /// Enumerate cached traces (sorted by name).
    pub fn list(&self) -> Result<Vec<CachedTrace>, StoreError> {
        let mut out = Vec::new();
        let entries = match std::fs::read_dir(&self.root) {
            Ok(entries) => entries,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(err) => return Err(err.into()),
        };
        for entry in entries {
            let entry = entry?;
            let file_name = entry.file_name();
            let name = match file_name.to_str() {
                Some(name) if !name.ends_with(".meta") && validate_name(name).is_ok() => name,
                _ => continue,
            };
            let meta = std::fs::read_to_string(self.meta_path(name)).unwrap_or_default();
            let mut sha = String::new();
            let mut size = entry.metadata()?.len();
            for line in meta.lines() {
                if let Some(rest) = line.strip_prefix("sha256 ") {
                    sha = rest.trim().to_string();
                } else if let Some(rest) = line.strip_prefix("size ") {
                    size = rest.trim().parse().unwrap_or(size);
                }
            }
            out.push(CachedTrace {
                name: name.to_string(),
                sha256: sha,
                size,
            });
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> TraceStore {
        let dir = std::env::temp_dir().join(format!(
            "resa-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        TraceStore::at(dir)
    }

    #[test]
    fn sha256_known_vectors() {
        // FIPS 180-4 test vectors.
        assert_eq!(
            to_hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            to_hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        // Incremental matches one-shot on a multi-block input.
        let data = vec![0x5Au8; 200_000];
        let mut s = Sha256Stream::new();
        for chunk in data.chunks(777) {
            s.update(chunk);
        }
        assert_eq!(s.finish(), sha256(&data));
    }

    #[test]
    fn ref_parsing() {
        assert_eq!(
            TraceRef::parse("trace:ctc-sp2").unwrap(),
            TraceRef {
                name: "ctc-sp2".to_string(),
                sha256: None
            }
        );
        let pin = "a".repeat(64);
        let r = TraceRef::parse(&format!("trace:kth.swf.gz@sha256:{pin}")).unwrap();
        assert_eq!(r.name, "kth.swf.gz");
        assert_eq!(r.sha256.as_deref(), Some(pin.as_str()));
        for bad in [
            "ctc",                     // no scheme
            "trace:",                  // empty name
            "trace:../etc/passwd",     // path escape
            "trace:a/b",               // separator
            "trace:.hidden",           // leading dot
            "trace:x.meta",            // sidecar collision
            "trace:x@sha1:abcd",       // wrong algo
            "trace:x@sha256:deadbeef", // short digest
            "trace:x@sha256:zz",       // non-hex
        ] {
            assert!(TraceRef::parse(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn import_resolve_and_list() {
        let store = temp_store("ok");
        let src = std::env::temp_dir().join(format!("resa-store-src-{}", std::process::id()));
        std::fs::write(&src, b"1 0 5 2\n").unwrap();
        let digest = store.import("tiny", &src, None).unwrap();
        assert_eq!(digest, sha256_file(&src).unwrap());
        // Unpinned resolve.
        let path = store.resolve_ref("trace:tiny").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"1 0 5 2\n");
        // Pinned resolve.
        let pinned = format!("trace:tiny@sha256:{digest}");
        assert_eq!(store.resolve_ref(&pinned).unwrap(), path);
        // Listing carries the sidecar metadata.
        let listed = store.list().unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].name, "tiny");
        assert_eq!(listed[0].sha256, digest);
        assert_eq!(listed[0].size, 8);
        std::fs::remove_dir_all(store.root()).ok();
        std::fs::remove_file(&src).ok();
    }

    #[test]
    fn checksum_mismatch_is_fatal() {
        let store = temp_store("pin");
        let src = std::env::temp_dir().join(format!("resa-store-src2-{}", std::process::id()));
        std::fs::write(&src, b"payload v1").unwrap();
        // Import-time pin mismatch.
        let wrong = "0".repeat(64);
        match store.import("t", &src, Some(&wrong)) {
            Err(StoreError::ChecksumMismatch { expected, .. }) => assert_eq!(expected, wrong),
            other => panic!("expected mismatch, got {other:?}"),
        }
        // Resolve-time pin mismatch after the cache entry is swapped.
        let digest = store.import("t", &src, None).unwrap();
        std::fs::write(store.root().join("t"), b"payload v2 (tampered)").unwrap();
        let err = store
            .resolve_ref(&format!("trace:t@sha256:{digest}"))
            .unwrap_err();
        assert!(
            matches!(err, StoreError::ChecksumMismatch { .. }),
            "{err:?}"
        );
        // The unpinned reference still resolves (TOFU semantics).
        assert!(store.resolve_ref("trace:t").is_ok());
        std::fs::remove_dir_all(store.root()).ok();
        std::fs::remove_file(&src).ok();
    }

    #[test]
    fn missing_entry_degrades_with_fetch_hint() {
        let store = temp_store("missing");
        let err = store.resolve_ref("trace:never-fetched").unwrap_err();
        match &err {
            StoreError::NotCached { name, .. } => assert_eq!(name, "never-fetched"),
            other => panic!("expected NotCached, got {other:?}"),
        }
        assert!(err.to_string().contains("resa fetch never-fetched"));
    }
}
