//! Offline stand-in for the `serde` facade.
//!
//! The build environment of this workspace has no access to crates.io, so the
//! real `serde` cannot be fetched. This crate provides the *subset* of the
//! serde surface the workspace actually uses — `Serialize` / `Deserialize`
//! traits, `#[derive(Serialize, Deserialize)]` and `#[serde(transparent)]` —
//! implemented over a simple JSON-like value tree instead of serde's
//! visitor-based data model. `serde_json` (also vendored) renders and parses
//! that value tree.
//!
//! The API is intentionally source-compatible with the way the workspace
//! imports serde (`use serde::{Deserialize, Serialize};`), so swapping the
//! real crates back in later only requires editing the workspace manifests.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::fmt;

/// A JSON-like value tree: the data model every serializable type lowers to.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer (always < 0; non-negative values use [`Value::UInt`]).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, with insertion order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object value, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array value, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Look up a field of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Error raised while deserializing a [`Value`] into a concrete type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// An error with an arbitrary message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves to a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into the serde value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from the serde value tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::UInt(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::custom("integer out of range")),
                    _ => Err(DeError::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::UInt(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::custom("integer out of range")),
                    Value::Int(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::custom("integer out of range")),
                    _ => Err(DeError::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Float(v) => Ok(*v as $t),
                    Value::UInt(v) => Ok(*v as $t),
                    Value::Int(v) => Ok(*v as $t),
                    _ => Err(DeError::custom("expected number")),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::custom("expected two-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(DeError::custom("expected three-element array")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl<K: ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}
