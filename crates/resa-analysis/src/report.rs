//! Plain-text report rendering (markdown tables, CSV, JSON persistence).
//!
//! The experiment binaries in `resa-bench` print every reproduced table and
//! figure through this module so EXPERIMENTS.md can be regenerated from the
//! command line.

use serde::Serialize;
use std::fmt::Write as _;

/// A simple rectangular table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; the number of cells must match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match the header"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Render as a GitHub-flavoured markdown table (with the title as a
    /// heading).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Render as CSV (header row first, no title).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Render as an aligned plain-text table for terminal output.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", render_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row, &widths));
        }
        out
    }
}

/// Format a float with 3 decimal places (the precision used in reports).
pub fn fmt_f64(x: f64) -> String {
    format!("{x:.3}")
}

/// Serialize any experiment result to pretty JSON (persisted next to the
/// rendered tables so EXPERIMENTS.md can cite machine-readable data).
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("experiment results are serializable")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Sample", &["alpha", "bound"]);
        t.push_row(vec!["0.5".into(), "4.000".into()]);
        t.push_row(vec!["1".into(), "2.000".into()]);
        t
    }

    #[test]
    fn markdown_rendering() {
        let md = sample().to_markdown();
        assert!(md.contains("### Sample"));
        assert!(md.contains("| alpha | bound |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 0.5 | 4.000 |"));
    }

    #[test]
    fn csv_rendering() {
        let csv = sample().to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("alpha,bound\n"));
        assert!(csv.contains("1,2.000"));
    }

    #[test]
    fn text_rendering_aligns_columns() {
        let txt = sample().to_text();
        assert!(txt.contains("Sample"));
        assert!(txt.contains("alpha"));
        assert!(txt.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn helpers() {
        assert_eq!(fmt_f64(1.0 / 3.0), "0.333");
        assert_eq!(sample().len(), 2);
        assert!(!sample().is_empty());
        assert_eq!(sample().title(), "Sample");
        #[derive(Serialize)]
        struct P {
            x: u32,
        }
        assert!(to_json(&P { x: 3 }).contains("\"x\": 3"));
    }
}
