//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! vendored `serde` facade without depending on `syn`/`quote` (which are not
//! available offline): the item is parsed directly from the raw
//! [`TokenStream`] and the impl is emitted as source text.
//!
//! Supported shapes — exactly what this workspace uses:
//! * structs with named fields (serialized as objects);
//! * tuple structs with one field (serialized transparently, like serde's
//!   newtype structs; `#[serde(transparent)]` is accepted and has the same
//!   meaning);
//! * tuple structs with several fields (serialized as arrays);
//! * enums with unit variants and one-field tuple variants (externally
//!   tagged, like serde's default representation).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit(serialize_impl(&item))
}

/// Derive `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit(deserialize_impl(&item))
}

fn emit(source: String) -> TokenStream {
    source
        .parse()
        .expect("serde_derive generated invalid Rust; this is a bug in the vendored derive")
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    /// Number of unnamed payload fields (0 = unit variant).
    arity: usize,
}

struct Item {
    name: String,
    shape: Shape,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes (`#[...]`) and visibility (`pub`, `pub(crate)`).
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored) does not support generic types: {name}");
        }
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(split_top_level(g.stream()).len())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!("serde_derive: unexpected struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream(), &name))
            }
            other => panic!("serde_derive: unexpected enum body for {name}: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

/// Split a field/variant list on commas at angle-bracket depth zero.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Extract the field names of a named-struct body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut last_ident: Option<String> = None;
            for tt in &chunk {
                match tt {
                    TokenTree::Ident(id) => last_ident = Some(id.to_string()),
                    TokenTree::Punct(p) if p.as_char() == ':' => break,
                    _ => {}
                }
            }
            last_ident.expect("serde_derive: field without a name")
        })
        .collect()
}

/// Extract the variants of an enum body.
fn parse_variants(stream: TokenStream, enum_name: &str) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut name: Option<String> = None;
            let mut arity = 0usize;
            let mut iter = chunk.into_iter().peekable();
            while let Some(tt) = iter.next() {
                match tt {
                    TokenTree::Punct(p) if p.as_char() == '#' => {
                        iter.next(); // attribute bracket group
                    }
                    TokenTree::Ident(id) => {
                        name = Some(id.to_string());
                        match iter.peek() {
                            Some(TokenTree::Group(g))
                                if g.delimiter() == Delimiter::Parenthesis =>
                            {
                                arity = split_top_level(g.stream()).len();
                            }
                            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                                panic!(
                                    "serde_derive (vendored): struct variants are not \
                                     supported ({enum_name})"
                                );
                            }
                            _ => {}
                        }
                        break;
                    }
                    _ => {}
                }
            }
            Variant {
                name: name.expect("serde_derive: variant without a name"),
                arity,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn serialize_impl(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push((\"{f}\".to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(fields)"
            )
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match v.arity {
                        0 => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(\"{vname}\".to_string()),\n"
                        ),
                        1 => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Object(vec![\
                             (\"{vname}\".to_string(), ::serde::Serialize::to_value(f0))]),\n"
                        ),
                        n => {
                            let binders: Vec<String> = (0..n).map(|i| format!("f{i}")).collect();
                            let values: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(vec![\
                                 (\"{vname}\".to_string(), \
                                 ::serde::Value::Array(vec![{}]))]),\n",
                                binders.join(", "),
                                values.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn deserialize_impl(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let builders: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(value.get(\"{f}\")\
                         .ok_or_else(|| ::serde::DeError::custom(\
                         \"missing field {f} in {name}\"))?)?,\n"
                    )
                })
                .collect();
            format!(
                "if value.as_object().is_none() {{\n\
                 return Err(::serde::DeError::custom(\"expected object for {name}\"));\n}}\n\
                 Ok({name} {{\n{builders}}})"
            )
        }
        Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(value)?))"),
        Shape::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = value.as_array()\
                 .ok_or_else(|| ::serde::DeError::custom(\"expected array for {name}\"))?;\n\
                 if items.len() != {n} {{\n\
                 return Err(::serde::DeError::custom(\"wrong arity for {name}\"));\n}}\n\
                 Ok({name}({}))",
                elems.join(", ")
            )
        }
        Shape::Unit => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| v.arity == 0)
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),\n", v.name))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter(|v| v.arity > 0)
                .map(|v| {
                    let vname = &v.name;
                    if v.arity == 1 {
                        format!(
                            "\"{vname}\" => Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(payload)?)),\n"
                        )
                    } else {
                        let n = v.arity;
                        let elems: Vec<String> = (0..n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        format!(
                            "\"{vname}\" => {{\n\
                             let items = payload.as_array().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected array payload\"))?;\n\
                             if items.len() != {n} {{\n\
                             return Err(::serde::DeError::custom(\"wrong arity\"));\n}}\n\
                             Ok({name}::{vname}({}))\n}}\n",
                            elems.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "match value {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => Err(::serde::DeError::custom(\
                 format!(\"unknown variant {{other}} of {name}\"))),\n}},\n\
                 ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                 let (tag, payload) = &fields[0];\n\
                 let _ = payload;\n\
                 match tag.as_str() {{\n\
                 {payload_arms}\
                 other => Err(::serde::DeError::custom(\
                 format!(\"unknown variant {{other}} of {name}\"))),\n}}\n}},\n\
                 _ => Err(::serde::DeError::custom(\"expected variant of {name}\")),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
         {body}\n}}\n}}\n"
    )
}
