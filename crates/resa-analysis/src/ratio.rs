//! Measured performance ratios.
//!
//! The paper's statements are about the worst-case ratio `C_A / C*`; the
//! experiments measure that quantity on concrete instances. For small
//! instances the reference is the true optimum (branch-and-bound); for larger
//! ones it falls back to the certified lower bound of
//! [`resa_core::bounds::lower_bound`], in which case the reported ratio is an
//! *upper* estimate of the true ratio (the conservative direction when
//! checking an upper-bound guarantee).

use resa_algos::prelude::Scheduler;
use resa_core::prelude::*;
use resa_exact::branch_bound::ExactSolver;
use serde::{Deserialize, Serialize};

/// How the reference value (denominator of the ratio) was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReferenceKind {
    /// The true optimal makespan, proven by branch-and-bound.
    Optimal,
    /// A certified lower bound on the optimal makespan.
    LowerBound,
}

/// One measured ratio.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RatioMeasurement {
    /// The algorithm that was measured.
    pub algorithm: String,
    /// Its makespan on the instance.
    pub makespan: u64,
    /// The reference value (optimum or lower bound).
    pub reference: u64,
    /// How the reference was obtained.
    pub reference_kind: ReferenceKind,
    /// `makespan / reference` (∞ is impossible: references are ≥ 1 for
    /// non-empty instances; 1.0 for empty instances).
    pub ratio: f64,
}

/// Throughput statistics of one budget-bounded exact solve, surfaced by the
/// sweep experiments (E8/E9) so the branch-and-bound search rate is visible
/// next to the quality columns.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExactProbe {
    /// Search nodes expanded before optimality or the budget.
    pub nodes: u64,
    /// Wall-clock search throughput (nodes per second).
    pub nodes_per_sec: f64,
    /// Deepest DFS level reached.
    pub peak_depth: usize,
    /// Whether the search completed within the budget.
    pub optimal: bool,
}

/// Configuration of the ratio harness.
#[derive(Debug, Clone, Copy)]
pub struct RatioHarness {
    /// Use the exact solver when the instance has at most this many jobs.
    pub exact_job_limit: usize,
    /// Node budget handed to the exact solver.
    pub exact_node_budget: u64,
}

impl Default for RatioHarness {
    fn default() -> Self {
        RatioHarness {
            exact_job_limit: 12,
            exact_node_budget: 2_000_000,
        }
    }
}

impl RatioHarness {
    /// A harness with the default limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compute the reference value for `instance`: the optimum when the
    /// instance is small enough (and the search completes), the certified
    /// lower bound otherwise.
    pub fn reference(&self, instance: &ResaInstance) -> (Time, ReferenceKind) {
        if instance.n_jobs() <= self.exact_job_limit {
            let result = ExactSolver::with_node_budget(self.exact_node_budget).solve(instance);
            if result.optimal {
                return (result.makespan, ReferenceKind::Optimal);
            }
        }
        (
            resa_core::bounds::lower_bound(instance).unwrap_or(Time::ZERO),
            ReferenceKind::LowerBound,
        )
    }

    /// Run a budget-bounded exact solve purely to measure solver throughput
    /// on `instance` (the schedule is discarded). The budget is
    /// [`RatioHarness::exact_node_budget`]; unlike [`RatioHarness::reference`]
    /// there is no job-count gate — truncated searches still report their
    /// nodes/sec, which is exactly what the sweep tables want to show.
    pub fn probe_exact(&self, instance: &ResaInstance) -> ExactProbe {
        let result = ExactSolver::with_node_budget(self.exact_node_budget).solve(instance);
        ExactProbe {
            nodes: result.nodes,
            nodes_per_sec: result.nodes_per_sec,
            peak_depth: result.peak_depth,
            optimal: result.optimal,
        }
    }

    /// Measure one scheduler against the reference.
    pub fn measure<S: Scheduler>(
        &self,
        scheduler: &S,
        instance: &ResaInstance,
    ) -> RatioMeasurement {
        let (reference, reference_kind) = self.reference(instance);
        self.measure_against(scheduler, instance, reference, reference_kind)
    }

    /// Measure several schedulers against a single shared reference
    /// (computing the optimum once per instance).
    pub fn measure_all(
        &self,
        schedulers: &[Box<dyn Scheduler>],
        instance: &ResaInstance,
    ) -> Vec<RatioMeasurement> {
        let (reference, kind) = self.reference(instance);
        schedulers
            .iter()
            .map(|s| self.measure_against(s, instance, reference, kind))
            .collect()
    }

    fn measure_against<S: Scheduler + ?Sized>(
        &self,
        scheduler: &S,
        instance: &ResaInstance,
        reference: Time,
        reference_kind: ReferenceKind,
    ) -> RatioMeasurement {
        let schedule = scheduler.schedule(instance);
        debug_assert!(
            schedule.is_valid(instance),
            "{} is broken",
            scheduler.name()
        );
        let makespan = schedule.makespan(instance);
        let ratio = if reference == Time::ZERO {
            1.0
        } else {
            makespan.ticks() as f64 / reference.ticks() as f64
        };
        RatioMeasurement {
            algorithm: scheduler.name(),
            makespan: makespan.ticks(),
            reference: reference.ticks(),
            reference_kind,
            ratio,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resa_algos::prelude::*;
    use resa_core::instance::ResaInstanceBuilder;

    fn small_instance() -> ResaInstance {
        ResaInstanceBuilder::new(3)
            .jobs(6, 1, 1u64)
            .job(1, 3u64)
            .build()
            .unwrap()
    }

    #[test]
    fn exact_reference_for_small_instances() {
        let h = RatioHarness::new();
        let inst = small_instance();
        let (r, kind) = h.reference(&inst);
        assert_eq!(kind, ReferenceKind::Optimal);
        assert_eq!(r, Time(3));
    }

    #[test]
    fn lower_bound_reference_for_large_instances() {
        let h = RatioHarness {
            exact_job_limit: 2,
            ..RatioHarness::default()
        };
        let inst = small_instance();
        let (r, kind) = h.reference(&inst);
        assert_eq!(kind, ReferenceKind::LowerBound);
        assert_eq!(r, Time(3)); // work bound: 9/3
    }

    #[test]
    fn measured_ratio_respects_graham() {
        let h = RatioHarness::new();
        let inst = small_instance();
        let m = h.measure(&Lsrc::new(), &inst);
        assert_eq!(m.reference_kind, ReferenceKind::Optimal);
        assert!(m.ratio >= 1.0);
        assert!(m.ratio <= 2.0 - 1.0 / 3.0 + 1e-9);
        assert_eq!(m.makespan, 5);
        assert_eq!(m.algorithm, "LSRC(submission)");
    }

    #[test]
    fn measure_all_shares_the_reference() {
        let h = RatioHarness::new();
        let inst = small_instance();
        let ms = h.measure_all(&resa_algos::all_schedulers(), &inst);
        assert_eq!(ms.len(), resa_algos::all_schedulers().len());
        assert!(ms.windows(2).all(|w| w[0].reference == w[1].reference));
        assert!(ms.iter().all(|m| m.ratio >= 1.0 - 1e-12));
    }

    #[test]
    fn probe_exact_reports_throughput() {
        let h = RatioHarness {
            exact_node_budget: 500,
            ..RatioHarness::default()
        };
        let inst = ResaInstanceBuilder::new(4)
            .job(3, 2u64)
            .job(2, 2u64)
            .job(1, 2u64)
            .job(2, 4u64)
            .job(1, 5u64)
            .reservation(2, 3u64, 2u64)
            .build()
            .unwrap();
        let probe = h.probe_exact(&inst);
        assert!(probe.nodes > 0);
        assert!(probe.nodes <= 501, "budget respected");
        assert!(probe.nodes_per_sec > 0.0);
        assert!(probe.peak_depth <= inst.n_jobs());
    }

    #[test]
    fn empty_instance_ratio_is_one() {
        let h = RatioHarness::new();
        let inst = ResaInstanceBuilder::new(2).build().unwrap();
        let m = h.measure(&Lsrc::new(), &inst);
        assert_eq!(m.ratio, 1.0);
        assert_eq!(m.makespan, 0);
    }
}
