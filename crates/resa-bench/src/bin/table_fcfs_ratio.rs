//! E6: FCFS has no constant performance guarantee.

use resa_bench::{fcfs_ratio_experiment, fcfs_table};

fn main() {
    let rows = fcfs_ratio_experiment(&[8, 16, 32, 64], 200);
    let table = fcfs_table(&rows);
    resa_bench::emit("table_fcfs_ratio", &table, &rows);
    println!(
        "Reading: the FCFS/LSRC ratio grows roughly like m/2 (the number of rounds), while\n\
         conservative and EASY backfilling recover part of the loss and LSRC stays near OPT."
    );
}
