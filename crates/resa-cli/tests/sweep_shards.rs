//! Sharded-sweep tests (ISSUE 8 tentpole): shard + merge reproduces the
//! unsharded report byte for byte, completion records gate `--resume`, and
//! a sweep killed by the `RESA_FAIL_AFTER_CELL` failpoint resumes to the
//! uninterrupted result.

use std::path::{Path, PathBuf};
use std::process::Command;

/// 2 machine sizes × 2 policies × 3 seeds = 12 cells.
const SPEC: &str = r#"{
    "name": "shard-test",
    "machines": [4, 8],
    "jobs": 5,
    "seeds": 3,
    "workload": "feitelson",
    "arrivals": 4,
    "policies": ["fcfs", "easy"],
    "reservations": { "family": "alpha", "alpha": "1/2", "count": 2,
                      "horizon": 200, "max_duration": 40 }
}"#;

fn work_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("resa-shards-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn write_spec(dir: &Path) -> String {
    let path = dir.join("spec.json");
    std::fs::write(&path, SPEC).expect("spec written");
    path.display().to_string()
}

#[test]
fn sharded_run_all_matches_unsharded_byte_for_byte() {
    let dir = work_dir("runall");
    let spec = write_spec(&dir);
    let shard_dir = dir.join("shards");

    let unsharded = resa_cli::run(&["sweep", &spec, "--format", "json"]).unwrap();
    let sharded = resa_cli::run(&[
        "sweep",
        &spec,
        "--format",
        "json",
        "--shards",
        "3",
        "--shard-dir",
        &shard_dir.display().to_string(),
    ])
    .unwrap();
    assert_eq!(
        sharded.stdout, unsharded.stdout,
        "merged shard output must be byte-identical to the unsharded run"
    );
    assert_eq!(sharded.violations, unsharded.violations);
    // The table format merges identically too.
    let unsharded = resa_cli::run(&["sweep", &spec]).unwrap();
    let sharded = resa_cli::run(&[
        "sweep",
        &spec,
        "--shards",
        "3",
        "--shard-dir",
        &shard_dir.display().to_string(),
        "--resume",
    ])
    .unwrap();
    assert_eq!(sharded.stdout, unsharded.stdout);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn worker_shards_plus_merge_match_unsharded() {
    let dir = work_dir("workers");
    let spec = write_spec(&dir);
    let shard_dir = dir.join("shards");
    let sd = shard_dir.display().to_string();

    // Each worker runs one shard, as separate hosts would.
    for i in 0..4 {
        let out = resa_cli::run(&[
            "sweep",
            &spec,
            "--shards",
            "4",
            "--shard",
            &i.to_string(),
            "--shard-dir",
            &sd,
        ])
        .unwrap();
        assert!(
            out.stdout.contains(&format!("shard {i}/4 complete")),
            "{}",
            out.stdout
        );
        assert!(out.stdout.contains("rows checksum"), "{}", out.stdout);
    }
    // A worker re-run with --resume trusts the completion record.
    let out = resa_cli::run(&[
        "sweep",
        &spec,
        "--shards",
        "4",
        "--shard",
        "2",
        "--shard-dir",
        &sd,
        "--resume",
    ])
    .unwrap();
    assert!(out.stdout.contains("already complete"), "{}", out.stdout);

    let merged = resa_cli::run(&[
        "sweep",
        &spec,
        "--format",
        "json",
        "--shard-dir",
        &sd,
        "--merge",
    ])
    .unwrap();
    let unsharded = resa_cli::run(&["sweep", &spec, "--format", "json"]).unwrap();
    assert_eq!(merged.stdout, unsharded.stdout);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn foreign_or_tampered_shard_dirs_are_refused() {
    let dir = work_dir("tamper");
    let spec = write_spec(&dir);
    let shard_dir = dir.join("shards");
    let sd = shard_dir.display().to_string();

    resa_cli::run(&["sweep", &spec, "--shards", "2", "--shard-dir", &sd]).unwrap();

    // A different seed is a different sweep: the manifest refuses the dir.
    let err = resa_cli::run(&[
        "sweep",
        &spec,
        "--shards",
        "2",
        "--shard-dir",
        &sd,
        "--seed",
        "7",
    ])
    .unwrap_err();
    assert!(
        err.to_string()
            .contains("different spec, seed or shard split"),
        "{err}"
    );
    // So is a different shard split.
    let err = resa_cli::run(&["sweep", &spec, "--shards", "3", "--shard-dir", &sd]).unwrap_err();
    assert!(
        err.to_string()
            .contains("different spec, seed or shard split"),
        "{err}"
    );

    // Tampering with a rows file breaks its completion checksum: --merge
    // refuses, and --resume re-runs the shard instead of trusting it.
    let rows = shard_dir.join("shard_0001.rows.json");
    let mut bytes = std::fs::read(&rows).unwrap();
    bytes.extend_from_slice(b" ");
    std::fs::write(&rows, &bytes).unwrap();
    let err = resa_cli::run(&["sweep", &spec, "--shard-dir", &sd, "--merge"]).unwrap_err();
    assert!(err.to_string().contains("checksum mismatch"), "{err}");

    let healed = resa_cli::run(&[
        "sweep",
        &spec,
        "--format",
        "json",
        "--shards",
        "2",
        "--shard-dir",
        &sd,
        "--resume",
    ])
    .unwrap();
    let unsharded = resa_cli::run(&["sweep", &spec, "--format", "json"]).unwrap();
    assert_eq!(healed.stdout, unsharded.stdout);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shard_flag_validation() {
    let dir = work_dir("flags");
    let spec = write_spec(&dir);
    for (args, needle) in [
        (vec!["sweep", &spec, "--shards", "2"], "--shard-dir"),
        (vec!["sweep", &spec, "--shard", "0"], "--shard-dir"),
        (vec!["sweep", &spec, "--resume"], "--shard-dir"),
        (
            vec![
                "sweep",
                &spec,
                "--shards",
                "2",
                "--shard",
                "5",
                "--shard-dir",
                "x",
            ],
            "out of range",
        ),
        (
            vec![
                "sweep",
                &spec,
                "--shard-dir",
                "x",
                "--merge",
                "--shard",
                "0",
            ],
            "drop --shard",
        ),
        (
            vec!["sweep", &spec, "--shards", "0", "--shard-dir", "x"],
            "at least 1",
        ),
    ] {
        let err = resa_cli::run(&args).unwrap_err();
        assert!(err.to_string().contains(needle), "{args:?}: {err}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The binary, killed mid-sweep by the cell failpoint, resumes to exactly
/// the uninterrupted result: completed shards are trusted, the shard in
/// flight at the crash is re-run from scratch.
#[test]
fn killed_sweep_resumes_to_the_uninterrupted_result() {
    let dir = work_dir("kill");
    let spec = write_spec(&dir);
    let shard_dir = dir.join("shards");
    let sd = shard_dir.display().to_string();

    // 12 cells in 2 shards of 6; crash after 8 completed cells — shard 0
    // has committed, shard 1 dies before writing its rows.
    let crashed = Command::new(env!("CARGO_BIN_EXE_resa"))
        .args([
            "sweep",
            &spec,
            "--format",
            "json",
            "--threads",
            "1",
            "--shards",
            "2",
            "--shard-dir",
            &sd,
        ])
        .env("RESA_FAIL_AFTER_CELL", "8")
        .output()
        .expect("resa binary runs");
    assert!(
        !crashed.status.success(),
        "the failpoint must abort the sweep"
    );
    assert!(
        shard_dir.join("shard_0000.done.json").exists(),
        "shard 0 completed before the crash"
    );
    assert!(
        !shard_dir.join("shard_0001.done.json").exists(),
        "shard 1 must not have a completion record"
    );

    let resumed = Command::new(env!("CARGO_BIN_EXE_resa"))
        .args([
            "sweep",
            &spec,
            "--format",
            "json",
            "--threads",
            "1",
            "--shards",
            "2",
            "--shard-dir",
            &sd,
            "--resume",
        ])
        .output()
        .expect("resa binary runs");
    assert!(resumed.status.success());
    assert!(
        String::from_utf8_lossy(&resumed.stderr).contains("shard 0/2 already complete"),
        "resume must skip the committed shard"
    );

    let uninterrupted = Command::new(env!("CARGO_BIN_EXE_resa"))
        .args(["sweep", &spec, "--format", "json", "--threads", "1"])
        .output()
        .expect("resa binary runs");
    assert!(uninterrupted.status.success());
    assert_eq!(
        String::from_utf8_lossy(&resumed.stdout),
        String::from_utf8_lossy(&uninterrupted.stdout),
        "resumed sweep diverged from the uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).ok();
}
