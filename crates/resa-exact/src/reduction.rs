//! The Theorem-1 reductions (inapproximability of RESASCHEDULING).
//!
//! Theorem 1 of the paper: unless P = NP there is no polynomial algorithm with
//! a finite performance ratio for RESASCHEDULING, even with `m = 1` or with a
//! single reservation. The `m = 1` proof reduces from 3-PARTITION (Figure 1):
//!
//! * one machine;
//! * `n = 3k` unit-width jobs with `p_i = x_i`;
//! * `k` reservations carving the timeline into `k` gaps of length exactly
//!   `B`, the last reservation being enormous (length `ρ·k(B+1) + 1`) so that
//!   any ρ-approximate schedule that fails to pack the jobs into the gaps is
//!   pushed beyond ratio ρ.
//!
//! If (and only if) the 3-PARTITION instance is a yes-instance, the jobs fit
//! exactly into the gaps and `C*_max = k(B+1) − 1`; a ρ-approximation would
//! therefore have to find that packing, i.e. solve 3-PARTITION.
//!
//! [`three_partition_to_resa`] builds this instance, [`extract_partition`]
//! maps a schedule of makespan `< k(B+1)` back to a 3-PARTITION witness, and
//! [`rigid_to_single_reservation`] builds the `n' = 1` variant (a huge
//! reservation placed right after a target makespan of a RIGIDSCHEDULING
//! instance).

use crate::three_partition::{Partition, ThreePartition};
use resa_core::prelude::*;

/// Outcome of [`three_partition_to_resa`]: the scheduling instance plus the
/// quantities needed to interpret schedules on it.
#[derive(Debug, Clone)]
pub struct ThreePartitionReduction {
    /// The RESASCHEDULING instance of Figure 1 (one machine).
    pub instance: ResaInstance,
    /// The gap length `B`.
    pub target: u64,
    /// The number of gaps `k`.
    pub k: usize,
    /// The optimal makespan when the 3-PARTITION instance is satisfiable:
    /// `k(B+1) − 1`.
    pub yes_makespan: Time,
    /// The end of the last (huge) reservation: `(ρ+1)·k(B+1)`.
    pub barrier_end: Time,
}

/// Build the Figure-1 instance for a 3-PARTITION instance and a claimed
/// approximation ratio `rho ≥ 1` (the length of the final blocking reservation
/// grows with `rho`).
pub fn three_partition_to_resa(tp: &ThreePartition, rho: u64) -> ThreePartitionReduction {
    assert!(rho >= 1, "the approximation ratio is at least 1");
    let b = tp.target();
    let k = tp.k();
    let ku = k as u64;
    // Jobs: unit width, duration x_i.
    let jobs: Vec<Job> = tp
        .items()
        .iter()
        .enumerate()
        .map(|(i, &x)| Job::new(i, 1, x))
        .collect();
    // Reservations: r_j = (j − n)(B+1) − 1 for the j-th reservation
    // (1-indexed over reservations), each of length 1 except the last one.
    let mut reservations = Vec::with_capacity(k);
    for j in 1..=ku {
        let start = j * (b + 1) - 1;
        let duration = if j == ku { rho * ku * (b + 1) + 1 } else { 1 };
        reservations.push(Reservation::new((j - 1) as usize, 1, duration, start));
    }
    let instance = ResaInstance::new(1, jobs, reservations)
        .expect("the Figure-1 construction is always feasible");
    ThreePartitionReduction {
        instance,
        target: b,
        k,
        yes_makespan: Time(ku * (b + 1) - 1),
        barrier_end: Time((rho + 1) * ku * (b + 1)),
    }
}

/// Interpret a schedule of the reduced instance as a 3-PARTITION witness: if
/// its makespan is at most `k(B+1) − 1`, every job runs inside one of the `k`
/// gaps, and grouping jobs by gap yields a valid partition.
///
/// Returns `None` if the makespan exceeds the yes-threshold (the schedule does
/// not certify anything) or if the grouping is not a partition into triples
/// (cannot happen for a feasible schedule within the threshold — the gaps are
/// exactly `B` long — but checked defensively).
pub fn extract_partition(
    reduction: &ThreePartitionReduction,
    schedule: &Schedule,
) -> Option<Partition> {
    let b = reduction.target;
    if schedule.makespan(&reduction.instance) > reduction.yes_makespan {
        return None;
    }
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); reduction.k];
    for placement in schedule.placements() {
        // Gap g spans [g(B+1), g(B+1) + B).
        let gap = (placement.start.ticks() / (b + 1)) as usize;
        if gap >= reduction.k {
            return None;
        }
        groups[gap].push(placement.job.0);
    }
    let mut partition = Vec::with_capacity(reduction.k);
    for g in groups {
        if g.len() != 3 {
            return None;
        }
        partition.push([g[0], g[1], g[2]]);
    }
    Some(partition)
}

/// The `n' = 1` variant of Theorem 1: given a RIGIDSCHEDULING instance and a
/// target makespan `c` (typically a guess of its optimum), add a single huge
/// reservation of the whole machine starting at `c` and lasting
/// `rho · c + 1`. Any schedule of ratio ≤ ρ on the resulting instance must
/// finish by `c` — i.e. decide whether the rigid instance has makespan ≤ `c`.
pub fn rigid_to_single_reservation(rigid: &RigidInstance, c: Time, rho: u64) -> ResaInstance {
    assert!(rho >= 1, "the approximation ratio is at least 1");
    assert!(c > Time::ZERO, "the target makespan must be positive");
    let reservation = Reservation::new(0usize, rigid.machines(), Dur(rho * c.ticks() + 1), c);
    ResaInstance::new(rigid.machines(), rigid.jobs().to_vec(), vec![reservation])
        .expect("a single full-width reservation is always feasible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch_bound::ExactSolver;
    use crate::three_partition::satisfiable_instance;
    use resa_algos::prelude::*;

    #[test]
    fn reduction_shape_matches_figure_1() {
        let tp = ThreePartition::new(vec![1, 2, 3], 6).unwrap();
        let red = three_partition_to_resa(&tp, 2);
        let inst = &red.instance;
        assert_eq!(inst.machines(), 1);
        assert_eq!(inst.n_jobs(), 3);
        assert_eq!(inst.n_reservations(), 1);
        // Single gap [0, 6), then the huge reservation starts at B = 6.
        assert_eq!(inst.reservations()[0].start, Time(6));
        assert_eq!(red.yes_makespan, Time(6));
        assert_eq!(red.barrier_end, Time(3 * 7));
        // The last reservation ends at (ρ+1)·k(B+1).
        assert_eq!(inst.reservations()[0].end(), red.barrier_end);
    }

    #[test]
    fn reduction_with_two_groups_has_unit_separators() {
        let tp = ThreePartition::new(vec![4, 2, 3, 2, 1, 4], 8).unwrap();
        let red = three_partition_to_resa(&tp, 1);
        let inst = &red.instance;
        assert_eq!(inst.n_reservations(), 2);
        // First separator: [8, 9) of length 1; second starts at 17.
        assert_eq!(inst.reservations()[0].start, Time(8));
        assert_eq!(inst.reservations()[0].duration, Dur(1));
        assert_eq!(inst.reservations()[1].start, Time(17));
        assert_eq!(red.yes_makespan, Time(17));
    }

    #[test]
    fn optimal_schedule_of_yes_instance_reaches_yes_makespan() {
        let tp = satisfiable_instance(2, 10, 3);
        let red = three_partition_to_resa(&tp, 2);
        let result = ExactSolver::new().solve(&red.instance);
        assert!(result.optimal);
        assert_eq!(result.makespan, red.yes_makespan);
        // And the optimal schedule is a 3-PARTITION witness.
        let partition = extract_partition(&red, &result.schedule).unwrap();
        assert!(tp.verify(&partition));
    }

    #[test]
    fn no_instance_forces_schedule_past_the_barrier() {
        // Unsatisfiable 3-PARTITION → any schedule must put some job after the
        // last (huge) reservation, so C_max > barrier_end ≫ yes_makespan.
        let tp = ThreePartition::new(vec![1, 1, 1, 5, 5, 5], 9).unwrap();
        assert!(!tp.is_satisfiable());
        let red = three_partition_to_resa(&tp, 2);
        let result = ExactSolver::new().solve(&red.instance);
        assert!(result.optimal);
        assert!(result.makespan > red.yes_makespan);
        assert!(result.makespan > red.barrier_end);
        assert!(extract_partition(&red, &result.schedule).is_none());
    }

    #[test]
    fn lsrc_on_yes_instance_may_miss_the_packing() {
        // LSRC is a heuristic: on the reduction it either finds the packing
        // (ratio 1) or overshoots past the barrier (unbounded ratio). Both are
        // feasible; we only check feasibility and the dichotomy.
        let tp = satisfiable_instance(3, 12, 1);
        let red = three_partition_to_resa(&tp, 2);
        let sched = Lsrc::new().schedule(&red.instance);
        assert!(sched.is_valid(&red.instance));
        let cmax = sched.makespan(&red.instance);
        assert!(cmax == red.yes_makespan || cmax > red.barrier_end || cmax >= red.yes_makespan);
    }

    #[test]
    fn single_reservation_reduction() {
        let rigid = resa_core::instance::ResaInstanceBuilder::new(2)
            .job(1, 3u64)
            .job(1, 3u64)
            .job(2, 2u64)
            .build_rigid()
            .unwrap();
        // This rigid instance has optimal makespan 5.
        let resa = rigid_to_single_reservation(&rigid, Time(5), 3);
        assert_eq!(resa.n_reservations(), 1);
        assert_eq!(resa.reservations()[0].start, Time(5));
        assert_eq!(resa.reservations()[0].width, 2);
        assert_eq!(resa.reservations()[0].duration, Dur(16));
        let result = ExactSolver::new().solve(&resa);
        assert!(result.optimal);
        assert_eq!(result.makespan, Time(5));
    }

    #[test]
    #[should_panic(expected = "ratio is at least 1")]
    fn rho_must_be_positive() {
        let tp = ThreePartition::new(vec![1, 2, 3], 6).unwrap();
        let _ = three_partition_to_resa(&tp, 0);
    }
}
