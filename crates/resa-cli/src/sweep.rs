//! `resa sweep` — declarative experiment sweeps.
//!
//! A sweep spec is a JSON file describing a cross product *workload model ×
//! cluster size × policy × reservation family × seeds*. Every cell of the
//! product is self-contained (its own instance, its own RNG stream), so the
//! whole sweep fans out through the parallel
//! [`ExperimentRunner`] and still
//! produces rows that are identical to a sequential run.
//!
//! ```json
//! {
//!   "name": "alpha-half-easy",
//!   "machines": [16, 32],
//!   "jobs": 40,
//!   "seeds": 4,
//!   "workload": "feitelson",
//!   "arrivals": 5,
//!   "policies": ["easy", "offline:lsrc"],
//!   "reservations": { "family": "alpha", "alpha": "1/2" }
//! }
//! ```
//!
//! `workload` is `uniform`, `feitelson` (default), `lublin`, or a cached
//! trace reference `trace:<name>[@sha256:<hex>]` (see `resa fetch`): the
//! first `jobs` records of the trace become a batch workload, widths clamped
//! into each swept cluster — `arrivals` and per-seed workload variation do
//! not apply to traces. For the generator workloads, `arrivals` (mean
//! interarrival) is optional — without it all jobs are released at 0.
//! `policies` accepts the same names as `resa replay --policy`.
//! `reservations` is optional; `family` is `alpha` (fields `alpha`, `count`,
//! `horizon`, `max_duration`) or `nonincreasing` (fields `steps`,
//! `max_initial`, `max_duration`).
//!
//! Two residue knobs make the paper's E7/E8 cell shapes expressible
//! declaratively: the alpha family accepts `alphas` (a *list* of α values
//! that becomes one more dimension of the cross product, each row labeled
//! with its α) in place of the single `alpha`, and the top-level
//! `exact_probe` (a branch-and-bound node budget) runs a budgeted exact
//! probe per cell and reports its mean nodes/sec per row — the same
//! per-cell probe `RatioHarness` uses, so sweep rows and the acceptance
//! benches measure the identical code path. `jobs` likewise accepts either
//! a single count or a list swept as one more labeled dimension.
//!
//! # Scenario dimensions
//!
//! Three further knobs turn cells into *resident-service* sessions instead
//! of batch simulator runs (they require on-line policies):
//!
//! * `deadline_frac` — every job is submitted through deadline-gated
//!   admission with due date `release + ⌈frac · duration⌉` under the
//!   reject policy; rows then count a *committed* job finishing past its
//!   deadline as a sanity violation (it never should).
//! * `widths` — every job is molded: its rigid shape is discarded and the
//!   service picks the completion-minimizing width from this menu for the
//!   job's work area `width × duration`.
//! * `failures` — `{count, width, max_duration, horizon}`: per-seed random
//!   drain windows injected up front (a window the remaining capacity
//!   cannot honor is rejected, not force-fitted); rows check the
//!   drained-window invariant independently of the substrate.
//!
//! `widths` and `deadline_frac` are mutually exclusive (a moldable job has
//! no fixed shape to deadline up front), and `exact_probe` does not apply
//! to scenario cells. Violations feed the usual exit-code-2 path.
//!
//! # Sharding and resume
//!
//! Because the flat cell list is deterministic, a sweep can be split into
//! contiguous shard ranges (`--shards`/`--shard`/`--shard-dir`), each shard
//! persisting its per-cell samples (`shard_NNNN.rows.json`, floats encoded
//! bit-exactly) plus an atomically written completion record
//! (`shard_NNNN.done.json` carrying an FNV-1a checksum of the rows bytes).
//! `--resume` re-runs only shards whose completion record does not verify,
//! and `--merge` re-assembles the samples in cell order and aggregates them
//! exactly as an unsharded run would — the rendered output is byte-for-byte
//! identical. A `manifest.json` pins spec text, seed and shard count so a
//! shard dir can never be silently reused for a different sweep.
//!
//! For crash testing, the environment variable named by
//! [`FAIL_AFTER_CELL_ENV`] aborts the process after that many completed
//! cells — between cell completion and the shard's rows hitting disk — so
//! a killed sweep leaves no completion record for the shard in flight.

use crate::fields::{anchor_line, check_fields};
use crate::opts::{CommonOpts, OutputFormat};
use crate::replay::{parse_alpha, PolicyArg, ReservationArg};
use crate::{CliError, Outcome};
use resa_analysis::prelude::*;
use resa_core::prelude::*;
use resa_sim::prelude::{AdmissionPolicy, DeadlineOutcome, ScheduleService};
use resa_workloads::prelude::*;
use serde::{DeError, Deserialize, Serialize, Value};
use std::path::{Path, PathBuf};

/// Help text for `resa sweep --help`.
pub const SWEEP_HELP: &str = "\
resa sweep — run a declarative experiment sweep

USAGE:
    resa sweep <spec.json> [OPTIONS]

The spec is a JSON object:
    name          string (optional)       label for the report
    machines      [int, ...]              cluster sizes to sweep
    jobs          int | [int, ...]        jobs per generated instance; a list
                  is swept as an extra product dimension with labeled rows
    seeds         int                     repetitions per cell
    workload      uniform|feitelson|lublin|trace:<name>  (default feitelson)
                  a trace: reference sweeps the first 'jobs' records of a
                  fetched trace as a batch workload (widths clamped to each
                  cluster; arrivals and seed variation do not apply)
    arrivals      int (optional)          mean interarrival; omit for release-at-0
    policies      [name, ...]             resa replay policy names
    reservations  object (optional)       { family: alpha|nonincreasing, ... }
                  the alpha family takes either 'alpha' (one value) or
                  'alphas' (a list swept as an extra product dimension)
    exact_probe   int (optional)          per-cell exact branch-and-bound
                  probe budget (nodes); rows gain mean exact nodes/sec

Scenario knobs (cells become resident-service sessions; on-line policies
only, exact_probe does not apply):
    deadline_frac number (optional)       deadline-gated admission with due
                  date release + ceil(frac * duration), reject policy; a
                  committed job past its deadline is a sanity violation
    widths        [int, ...] (optional)   mold every job: pick the
                  completion-minimizing width from this menu for the job's
                  area (mutually exclusive with deadline_frac)
    failures      object (optional)       { count, width, max_duration,
                  horizon }: per-seed random drain windows injected up
                  front, checked against the drained-window invariant

Every (machines x jobs x alpha x policy x seed) cell is an independent
simulation; cells run in parallel unless --threads 1. Rows aggregate the
seeds per (machines, jobs, alpha, policy) group and report ratios against
the certified lower bound.

Sharding (resumable and distributable sweeps):
    --shards N        split the cell list into N contiguous ranges
    --shard-dir DIR   where the manifest and per-shard files live
    --shard I         run only shard I (0-based) and write its files
    --resume          skip shards whose completion records verify
    --merge           only merge previously completed shards and render

With --shards but no --shard, every shard runs (in order) and the merged
result is rendered — byte-identical to the unsharded run. A shard worker
writes shard_NNNN.rows.json plus an atomic shard_NNNN.done.json completion
record; --resume trusts a record only when its checksum matches the rows
file. manifest.json pins the spec + seed + shard count, so mixing shard
dirs across different sweeps is an error, not silent garbage.

plus the common options: --seed --threads --format --quick --out
";

/// A parsed sweep specification.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Label used in the report title.
    pub name: String,
    /// Cluster sizes to sweep.
    pub machines: Vec<u32>,
    /// Job counts per generated instance; more than one entry is one more
    /// dimension of the cross product.
    pub jobs: Vec<usize>,
    /// Whether `jobs` was written as a list (labels rows with the count).
    pub jobs_labeled: bool,
    /// Repetitions per cell.
    pub seeds: u64,
    /// Workload model: `uniform`, `feitelson` or `lublin`.
    pub workload: String,
    /// Mean interarrival of on-line releases (`None` = all jobs at 0).
    pub arrivals: Option<u64>,
    /// Policies, by `resa replay --policy` name.
    pub policies: Vec<String>,
    /// Optional reservation overlay.
    pub reservations: Option<ReservationSpec>,
    /// Per-cell exact branch-and-bound probe budget in nodes (`None` = no
    /// exact probe).
    pub exact_probe: Option<u64>,
    /// Deadline scenario: submit every job with due date `release +
    /// ⌈frac · duration⌉` under reject admission.
    pub deadline_frac: Option<f64>,
    /// Moldable scenario: the width menu every job is molded against.
    pub widths: Option<Vec<u32>>,
    /// Failure scenario: per-seed random drain windows injected up front.
    pub failures: Option<FailureSpec>,
}

/// The `failures` object of a sweep spec: `count` drain windows of `width`
/// processors, each lasting `1..=max_duration` ticks and starting in
/// `0..=horizon`, drawn deterministically from the cell's seed.
#[derive(Debug, Clone)]
pub struct FailureSpec {
    /// Number of drain windows attempted per cell.
    pub count: usize,
    /// Processors each drain subtracts.
    pub width: u32,
    /// Longest drain window.
    pub max_duration: u64,
    /// Latest admissible drain start.
    pub horizon: u64,
}

/// The `reservations` object of a sweep spec.
#[derive(Debug, Clone)]
pub struct ReservationSpec {
    /// `alpha` or `nonincreasing`.
    pub family: String,
    /// α as `"1/2"` or `"0.5"` (alpha family).
    pub alpha: Option<String>,
    /// A *list* of α values swept as one more dimension of the cross
    /// product (alpha family; mutually exclusive with `alpha`).
    pub alphas: Option<Vec<String>>,
    /// Number of reservations (alpha family).
    pub count: Option<usize>,
    /// Placement horizon (alpha family).
    pub horizon: Option<u64>,
    /// Longest reservation.
    pub max_duration: Option<u64>,
    /// Staircase steps (nonincreasing family).
    pub steps: Option<usize>,
    /// Peak unavailability (nonincreasing family).
    pub max_initial: Option<u32>,
}

fn get_field<T: Deserialize>(value: &Value, name: &str) -> Result<Option<T>, DeError> {
    match value.get(name) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => T::from_value(v)
            .map(Some)
            .map_err(|e| DeError::custom(format!("field '{name}': {e}"))),
    }
}

fn require<T>(field: Option<T>, name: &str) -> Result<T, DeError> {
    field.ok_or_else(|| DeError::custom(format!("missing required field '{name}'")))
}

impl Deserialize for SweepSpec {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        if value.as_object().is_none() {
            return Err(DeError::custom("sweep spec must be a JSON object"));
        }
        // Unknown/misspelled keys are errors, not silently dropped sections:
        // a spec with `reservation` instead of `reservations` used to run a
        // reservation-free sweep without a word.
        check_fields(
            value,
            "sweep spec",
            &[
                "name",
                "machines",
                "jobs",
                "seeds",
                "workload",
                "arrivals",
                "policies",
                "reservations",
                "exact_probe",
                "deadline_frac",
                "widths",
                "failures",
            ],
        )?;
        // `jobs` is a count or a list of counts — a list becomes one more
        // labeled dimension of the cross product, mirroring `alphas`.
        let (jobs, jobs_labeled) = match value.get("jobs") {
            None | Some(Value::Null) => {
                return Err(DeError::custom("missing required field 'jobs'"))
            }
            Some(raw) => match usize::from_value(raw) {
                Ok(n) => (vec![n], false),
                Err(_) => (
                    Vec::<usize>::from_value(raw).map_err(|_| {
                        DeError::custom(
                            "field 'jobs': expected a job count or a list of job counts",
                        )
                    })?,
                    true,
                ),
            },
        };
        Ok(SweepSpec {
            name: get_field(value, "name")?.unwrap_or_else(|| "sweep".to_string()),
            machines: require(get_field(value, "machines")?, "machines")?,
            jobs,
            jobs_labeled,
            seeds: require(get_field(value, "seeds")?, "seeds")?,
            workload: get_field(value, "workload")?.unwrap_or_else(|| "feitelson".to_string()),
            arrivals: get_field(value, "arrivals")?,
            policies: require(get_field(value, "policies")?, "policies")?,
            reservations: get_field(value, "reservations")?,
            exact_probe: get_field(value, "exact_probe")?,
            deadline_frac: get_field(value, "deadline_frac")?,
            widths: get_field(value, "widths")?,
            failures: get_field(value, "failures")?,
        })
    }
}

impl Deserialize for FailureSpec {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        if value.as_object().is_none() {
            return Err(DeError::custom("'failures' must be a JSON object"));
        }
        check_fields(
            value,
            "the 'failures' section",
            &["count", "width", "max_duration", "horizon"],
        )?;
        Ok(FailureSpec {
            count: require(get_field(value, "count")?, "failures.count")?,
            width: require(get_field(value, "width")?, "failures.width")?,
            max_duration: require(get_field(value, "max_duration")?, "failures.max_duration")?,
            horizon: require(get_field(value, "horizon")?, "failures.horizon")?,
        })
    }
}

impl SweepSpec {
    /// Whether any scenario knob (`deadline_frac` / `widths` / `failures`)
    /// turns cells into resident-service sessions.
    pub fn is_scenario(&self) -> bool {
        self.deadline_frac.is_some() || self.widths.is_some() || self.failures.is_some()
    }
}

impl Deserialize for ReservationSpec {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        if value.as_object().is_none() {
            return Err(DeError::custom("'reservations' must be a JSON object"));
        }
        check_fields(
            value,
            "the 'reservations' section",
            &[
                "family",
                "alpha",
                "alphas",
                "count",
                "horizon",
                "max_duration",
                "steps",
                "max_initial",
            ],
        )?;
        Ok(ReservationSpec {
            family: require(get_field(value, "family")?, "reservations.family")?,
            alpha: get_field(value, "alpha")?,
            alphas: get_field(value, "alphas")?,
            count: get_field(value, "count")?,
            horizon: get_field(value, "horizon")?,
            max_duration: get_field(value, "max_duration")?,
            steps: get_field(value, "steps")?,
            max_initial: get_field(value, "max_initial")?,
        })
    }
}

impl ReservationSpec {
    /// Expand the spec into the α dimension of the sweep: one `(label,
    /// argument)` variant per α value. A single `alpha` (and the
    /// nonincreasing family) yields one unlabeled variant, so specs without
    /// an `alphas` list keep their exact previous row shape.
    fn to_args(&self) -> Result<Vec<(Option<String>, ReservationArg)>, CliError> {
        match self.family.as_str() {
            "alpha" => {
                let (texts, labeled): (Vec<String>, bool) = match (&self.alpha, &self.alphas) {
                    (Some(_), Some(_)) => {
                        return Err(CliError::Parse(
                            "reservations: give either 'alpha' or 'alphas', not both".into(),
                        ))
                    }
                    (Some(a), None) => (vec![a.clone()], false),
                    (None, Some(list)) if !list.is_empty() => (list.clone(), true),
                    _ => {
                        return Err(CliError::Parse(
                            "reservations.family 'alpha' needs an 'alpha' value or a \
                             non-empty 'alphas' list"
                                .into(),
                        ))
                    }
                };
                texts
                    .iter()
                    .map(|text| {
                        Ok((
                            labeled.then(|| text.clone()),
                            ReservationArg::Alpha {
                                alpha: parse_alpha(text)?,
                                count: self.count,
                                horizon: self.horizon,
                                max_duration: self.max_duration,
                            },
                        ))
                    })
                    .collect()
            }
            "nonincreasing" => {
                if self.alphas.is_some() {
                    return Err(CliError::Parse(
                        "'alphas' only applies to the alpha family".into(),
                    ));
                }
                Ok(vec![(
                    None,
                    ReservationArg::NonIncreasing {
                        steps: self.steps,
                        max_initial: self.max_initial,
                        max_duration: self.max_duration,
                    },
                )])
            }
            other => Err(CliError::Parse(format!(
                "unknown reservation family '{other}' (alpha|nonincreasing)"
            ))),
        }
    }
}

/// One aggregated sweep row (per machines × α × policy group).
#[derive(Debug, Clone, Serialize)]
pub struct SweepRow {
    /// Cluster size of the cells behind this row.
    pub machines: u32,
    /// Job count when the spec sweeps a `jobs` list; `None` otherwise.
    pub jobs: Option<usize>,
    /// α label when the spec sweeps an `alphas` list; `None` otherwise.
    pub alpha: Option<String>,
    /// Policy name.
    pub policy: String,
    /// Number of seeds aggregated.
    pub cells: usize,
    /// Mean makespan over the seeds.
    pub mean_makespan: f64,
    /// Mean makespan / certified lower bound.
    pub mean_ratio_to_lb: f64,
    /// Worst makespan / certified lower bound.
    pub worst_ratio_to_lb: f64,
    /// Mean waiting time.
    pub mean_wait: f64,
    /// Mean utilization.
    pub mean_utilization: f64,
    /// Mean exact branch-and-bound probe throughput in nodes/sec, when the
    /// spec set `exact_probe`.
    pub mean_exact_nodes_per_sec: Option<f64>,
}

/// `resa sweep <spec.json> [options]`.
pub fn run(args: &[&str]) -> Result<Outcome, CliError> {
    if args.first() == Some(&"--help") {
        return Ok(Outcome {
            stdout: SWEEP_HELP.to_string(),
            violations: 0,
        });
    }
    let (spec_path, rest) = match args.split_first() {
        Some((p, rest)) if !p.starts_with("--") => (*p, rest),
        _ => return Err(CliError::Usage("sweep expects a spec path".into())),
    };
    let mut sharding = ShardOpts::default();
    let opts = CommonOpts::parse(rest, &mut |flag, value| {
        let take =
            |name: &str| value.ok_or_else(|| CliError::Usage(format!("{name} expects a value")));
        match flag {
            "--shards" => {
                let n: usize = take("--shards")?
                    .parse()
                    .map_err(|_| CliError::Usage("--shards expects an integer".into()))?;
                if n == 0 {
                    return Err(CliError::Usage("--shards must be at least 1".into()));
                }
                sharding.shards = Some(n);
                Ok(1)
            }
            "--shard" => {
                sharding.shard = Some(
                    take("--shard")?
                        .parse()
                        .map_err(|_| CliError::Usage("--shard expects an integer".into()))?,
                );
                Ok(1)
            }
            "--shard-dir" => {
                sharding.dir = Some(take("--shard-dir")?.to_string());
                Ok(1)
            }
            "--resume" => {
                sharding.resume = true;
                Ok(0)
            }
            "--merge" => {
                sharding.merge = true;
                Ok(0)
            }
            other => Err(CliError::Usage(format!(
                "unknown option '{other}' (see `resa sweep --help`)"
            ))),
        }
    })?;
    sharding.validate()?;
    let text = std::fs::read_to_string(spec_path).map_err(|e| CliError::Io {
        path: spec_path.to_string(),
        message: e.to_string(),
    })?;
    let spec: SweepSpec = serde_json::from_str(&text).map_err(|e| {
        // Anchor field-level errors to the offending line of the spec.
        CliError::Parse(format!(
            "{spec_path}: {}",
            anchor_line(&text, &e.to_string())
        ))
    })?;
    if sharding.dir.is_some() {
        run_sharded(&spec, &opts, &text, &sharding)
    } else {
        let (rows, violations) = execute(&spec, &opts)?;
        render(&spec, &rows, violations, &opts)
    }
}

/// One cell's measurements: makespan, ratio to the certified lower bound,
/// mean wait, utilization, violation flag and exact-probe nodes/sec.
type Sample = (f64, f64, f64, f64, bool, Option<f64>);

/// The expanded execution plan of a sweep: reservation variants, parsed
/// policies and the flat deterministic cell list that every run — sharded
/// or not — walks in the same order.
struct SweepPlan {
    variants: Vec<(Option<String>, ReservationArg)>,
    policies: Vec<(String, PolicyArg)>,
    /// For a `trace:<name>` workload: the job prefix loaded (once, at plan
    /// time) from the checksum-pinned cache. Cells reuse its widths and
    /// durations as a batch workload.
    trace_pool: Option<Vec<Job>>,
    /// `(machines, jobs index, α-variant index, policy index, seed)` per cell.
    cells: Vec<(u32, usize, usize, usize, u64)>,
}

/// Validate the spec and expand it into a [`SweepPlan`].
fn plan(spec: &SweepSpec) -> Result<SweepPlan, CliError> {
    if spec.machines.is_empty() || spec.policies.is_empty() || spec.seeds == 0 {
        return Err(CliError::Parse(
            "sweep spec needs at least one machine size, one policy and one seed".into(),
        ));
    }
    if spec.jobs.is_empty() || spec.jobs.contains(&0) {
        return Err(CliError::Parse(
            "'jobs' needs at least one positive job count".into(),
        ));
    }
    let trace_pool = if TraceRef::is_trace_ref(&spec.workload) {
        let wanted = spec
            .jobs
            .iter()
            .copied()
            .max()
            .expect("jobs checked non-empty");
        Some(load_trace_pool(&spec.workload, wanted)?)
    } else if matches!(spec.workload.as_str(), "uniform" | "feitelson" | "lublin") {
        None
    } else {
        return Err(CliError::Parse(format!(
            "unknown workload '{}' (uniform|feitelson|lublin|trace:<name>)",
            spec.workload
        )));
    };
    check_scenario(spec)?;
    let variants: Vec<(Option<String>, ReservationArg)> = match &spec.reservations {
        None => vec![(None, ReservationArg::None)],
        Some(r) => r.to_args()?,
    };
    let policies: Vec<(String, PolicyArg)> = spec
        .policies
        .iter()
        .map(|name| PolicyArg::parse(name).map(|p| (name.clone(), p)))
        .collect::<Result<_, _>>()?;
    if spec.is_scenario() {
        if let Some((name, _)) = policies
            .iter()
            .find(|(_, p)| !matches!(p, PolicyArg::Online(_)))
        {
            return Err(CliError::Parse(format!(
                "scenario sweeps run the resident service; policy '{name}' is \
                 off-line (use fcfs|easy|greedy)"
            )));
        }
    }
    let cells: Vec<(u32, usize, usize, usize, u64)> = spec
        .machines
        .iter()
        .flat_map(|&m| {
            let n_jobs = spec.jobs.len();
            let n_variants = variants.len();
            let n_policies = policies.len();
            (0..n_jobs).flat_map(move |j| {
                (0..n_variants).flat_map(move |v| {
                    (0..n_policies).flat_map(move |p| (0..spec.seeds).map(move |s| (m, j, v, p, s)))
                })
            })
        })
        .collect();
    Ok(SweepPlan {
        variants,
        policies,
        trace_pool,
        cells,
    })
}

/// Resolve a `trace:` workload reference through the cache and stream the
/// first `wanted` jobs out of it — the sweep never materializes the rest of
/// an archive-scale log. The pool is loaded once per plan, not per cell.
fn load_trace_pool(reference: &str, wanted: usize) -> Result<Vec<Job>, CliError> {
    let path = TraceStore::open_default()
        .resolve_ref(reference)
        .map_err(|e| CliError::Parse(e.to_string()))?;
    let stream = open_trace(&path, None).map_err(|e| CliError::Io {
        path: reference.to_string(),
        message: e.to_string(),
    })?;
    let mut pool = Vec::with_capacity(wanted);
    for item in stream {
        if pool.len() == wanted {
            break;
        }
        match item {
            Ok(job) => pool.push(job),
            Err(SwfReadError::Swf(e)) => return Err(CliError::Parse(format!("{reference}: {e}"))),
            Err(SwfReadError::Io(e)) => {
                return Err(CliError::Io {
                    path: reference.to_string(),
                    message: e.to_string(),
                })
            }
        }
    }
    if pool.len() < wanted {
        return Err(CliError::Parse(format!(
            "{reference}: trace has {} jobs but the sweep asks for {wanted}",
            pool.len()
        )));
    }
    Ok(pool)
}

/// Shape one cell's workload out of the trace pool: the first `jobs`
/// records, widths clamped into the swept cluster, submissions treated as a
/// batch (sweeps compare policies across machine counts the trace was never
/// recorded on, so its arrival clock is deliberately ignored — `arrivals`
/// and per-seed workload variation do not apply to `trace:` workloads).
fn trace_cell_jobs(pool: &[Job], machines: u32, jobs: usize) -> Vec<Job> {
    pool[..jobs]
        .iter()
        .enumerate()
        .map(|(id, j)| Job::new(id, j.width.min(machines).max(1), j.duration))
        .collect()
}

/// Validate the scenario knobs against each other and against the smallest
/// swept cluster (widths are probed on every machine size, so the menu must
/// fit them all).
fn check_scenario(spec: &SweepSpec) -> Result<(), CliError> {
    if spec.deadline_frac.is_some() && spec.widths.is_some() {
        return Err(CliError::Parse(
            "give either 'deadline_frac' or 'widths', not both (a moldable job \
             has no fixed shape to deadline up front)"
                .into(),
        ));
    }
    if spec.is_scenario() && spec.exact_probe.is_some() {
        return Err(CliError::Parse(
            "'exact_probe' does not apply to scenario sweeps \
             (deadline_frac/widths/failures)"
                .into(),
        ));
    }
    if let Some(frac) = spec.deadline_frac {
        if !frac.is_finite() || frac <= 0.0 {
            return Err(CliError::Parse(
                "'deadline_frac' must be a positive finite number".into(),
            ));
        }
    }
    let min_m = *spec
        .machines
        .iter()
        .min()
        .expect("machines checked non-empty");
    if let Some(widths) = &spec.widths {
        if widths.is_empty() {
            return Err(CliError::Parse("'widths' must be a non-empty menu".into()));
        }
        if let Some(&w) = widths.iter().find(|&&w| w == 0 || w > min_m) {
            return Err(CliError::Parse(format!(
                "moldable width {w} not in 1..={min_m} (the smallest swept cluster)"
            )));
        }
    }
    if let Some(f) = &spec.failures {
        if f.width == 0 || f.width > min_m {
            return Err(CliError::Parse(format!(
                "failure width {} not in 1..={min_m} (the smallest swept cluster)",
                f.width
            )));
        }
        if f.max_duration == 0 {
            return Err(CliError::Parse(
                "'failures.max_duration' must be positive".into(),
            ));
        }
    }
    Ok(())
}

/// Environment variable of the sweep crash failpoint: when set to `n`, the
/// process aborts after `n` cells have completed — before the shard in
/// flight writes its rows or completion record. Crash-recovery tests use
/// it to kill a sharded sweep at a deterministic point and assert that
/// `--resume` reproduces the uninterrupted run.
pub const FAIL_AFTER_CELL_ENV: &str = "RESA_FAIL_AFTER_CELL";

/// Cells completed process-wide, for the [`FAIL_AFTER_CELL_ENV`] failpoint.
static CELLS_DONE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Run the cells in `[start, end)` of the plan's cell list and return one
/// sample per cell, in cell order (parallel execution is order-preserving).
fn run_cells(
    spec: &SweepSpec,
    plan: &SweepPlan,
    opts: &CommonOpts,
    start: usize,
    end: usize,
) -> Vec<Sample> {
    let fail_after: Option<u64> = std::env::var(FAIL_AFTER_CELL_ENV)
        .ok()
        .and_then(|v| v.parse().ok());
    let runner = opts.runner();
    runner.map(&plan.cells[start..end], |&(m, j, v, p, s)| {
        let seed = opts.seed + s;
        let jobs = match &plan.trace_pool {
            Some(pool) => trace_cell_jobs(pool, m, spec.jobs[j]),
            None => generate_jobs(&spec.workload, m, spec.jobs[j], spec.arrivals, seed),
        };
        let max_release = jobs.iter().map(|j| j.release.ticks()).max().unwrap_or(0);
        let (instance, _clamped) =
            crate::replay::build_instance(m, jobs, &plan.variants[v].1, max_release, seed, 0)
                .expect("sweep instances are feasible by construction");
        let sample = if spec.is_scenario() {
            run_scenario_cell(spec, m, &instance, plan.policies[p].1, seed)
        } else {
            let lb = lower_bound(&instance).unwrap_or(Time::ZERO).ticks().max(1) as f64;
            let (schedule, _) = crate::replay::run_policy(plan.policies[p].1, &instance);
            let metrics = resa_sim::prelude::SimMetrics::from_schedule(&instance, &schedule);
            let makespan = metrics.makespan.ticks() as f64;
            let violation = !schedule.is_valid(&instance) || makespan < lb - 1e-9;
            let exact_nodes_per_sec = spec.exact_probe.map(|budget| {
                let harness = RatioHarness {
                    exact_node_budget: budget,
                    ..RatioHarness::default()
                };
                harness.probe_exact(&instance).nodes_per_sec
            });
            (
                makespan,
                makespan / lb,
                metrics.mean_wait,
                metrics.utilization,
                violation,
                exact_nodes_per_sec,
            )
        };
        if let Some(limit) = fail_after {
            let done = CELLS_DONE.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1;
            if done == limit.max(1) {
                eprintln!("resa sweep: injected crash after {done} completed cell(s)");
                std::process::abort();
            }
        }
        sample
    })
}

/// Deterministic per-cell stream for the failure windows (xorshift64; the
/// state is seeded off the cell seed and kept non-zero).
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Run one scenario cell: the generated instance driven through a resident
/// [`ScheduleService`] session instead of the batch simulator — overlay
/// reserved up front, seeded failure drains injected, then every job
/// submitted (deadline-gated or molded per the spec) and the session
/// drained. The violation flag re-derives the scenario guarantees from
/// first principles: schedule validity on the off-line oracle instance, no
/// committed deadline missed, and the drained-window invariant.
fn run_scenario_cell(
    spec: &SweepSpec,
    machines: u32,
    instance: &ResaInstance,
    policy: PolicyArg,
    seed: u64,
) -> Sample {
    let PolicyArg::Online(policy) = policy else {
        unreachable!("plan() rejects off-line policies for scenario sweeps")
    };
    let mut svc = ScheduleService::new(policy, AvailabilityTimeline::constant(machines));
    for r in instance.reservations() {
        svc.reserve(r.width, r.duration, r.start)
            .expect("build_instance certified the overlay");
    }
    if let Some(f) = &spec.failures {
        let mut rng = seed.wrapping_add(0x9e37_79b9_7f4a_7c15) | 1;
        for _ in 0..f.count {
            let duration = 1 + xorshift(&mut rng) % f.max_duration;
            let start = xorshift(&mut rng) % (f.horizon + 1);
            // A window the remaining capacity cannot honor is rejected by
            // the service, transactionally — drop it rather than force it.
            let _ = svc.inject(f.width, Dur(duration), Time(start));
        }
    }
    let mut order: Vec<&Job> = instance.jobs().iter().collect();
    order.sort_by_key(|job| (job.release, job.id));
    let mut committed: Vec<(JobId, Dur, Time)> = Vec::new();
    for job in order {
        if let Some(menu) = &spec.widths {
            // Mold the job: same work area, width chosen by the service.
            // Moldable submission happens at the job's release instant.
            svc.advance_clamped(job.release);
            let area = u64::from(job.width) * job.duration.ticks();
            svc.submit_moldable(menu, area)
                .expect("the menu was validated against the smallest cluster");
        } else if let Some(frac) = spec.deadline_frac {
            let slack = (job.duration.ticks() as f64 * frac).ceil() as u64;
            let deadline = job.release + Dur(slack);
            // Reject-mode admission: a rejected job simply never exists in
            // this cell; a committed one joins the checked commitments.
            if let Ok((id, DeadlineOutcome::Committed { .. }, _)) = svc.submit_deadline(
                job.width,
                job.duration,
                Some(job.release),
                deadline,
                AdmissionPolicy::Reject,
            ) {
                committed.push((id, job.duration, deadline));
            }
        } else {
            svc.submit(job.width, job.duration, Some(job.release))
                .expect("generated jobs fit their cluster");
        }
    }
    svc.drain();

    // Guarantee checks, re-derived independently of the substrate.
    let live = svc.to_instance();
    let job_windows: Vec<Window> = live
        .jobs()
        .iter()
        .filter_map(|job| {
            svc.schedule()
                .start_of(job.id)
                .map(|s| (job.width, s, s.saturating_add(job.duration)))
        })
        .collect();
    let mut blocked: Vec<Window> = svc
        .drains()
        .iter()
        .filter(|d| !d.revoked && d.end > d.start)
        .map(|d| (d.width, d.start, d.end))
        .collect();
    blocked.extend(
        svc.reservations()
            .iter()
            .filter(|r| !r.cancelled && r.end > r.start)
            .map(|r| (r.width, r.start, r.end)),
    );
    let mut all_committed_placed = true;
    let commitments: Vec<(Time, Time)> = committed
        .iter()
        .filter_map(
            |&(id, duration, deadline)| match svc.schedule().start_of(id) {
                Some(s) => Some((s.saturating_add(duration), deadline)),
                None => {
                    all_committed_placed = false;
                    None
                }
            },
        )
        .collect();
    let (oracle_instance, oracle_schedule) = svc.oracle_parts();
    // The ratio baseline is the certified lower bound of the *live*
    // instance (every submitted job plus the drain/reservation overlay):
    // the oracle instance excludes committed jobs, so its bound can
    // degenerate to zero when admission commits everything.
    let lb = lower_bound(&live).unwrap_or(Time::ZERO).ticks().max(1) as f64;
    let (_, metrics) = svc.snapshot();
    let makespan = metrics.makespan.ticks() as f64;
    let violation = !oracle_schedule.is_valid(&oracle_instance)
        || !all_committed_placed
        || !deadlines_met(&commitments)
        || !drain_invariant(machines, &job_windows, &blocked)
        || makespan < lb - 1e-9;
    (
        makespan,
        makespan / lb,
        metrics.mean_wait,
        metrics.utilization,
        violation,
        None,
    )
}

/// Aggregate the full sample list (one per cell, in cell order) into the
/// per-(machines, jobs, α, policy) rows, preserving spec order. Returns the
/// rows and the number of sanity violations.
fn aggregate(spec: &SweepSpec, plan: &SweepPlan, samples: &[Sample]) -> (Vec<SweepRow>, usize) {
    let mut rows = Vec::new();
    let mut violations = 0usize;
    let per_group = spec.seeds as usize;
    for (group_idx, chunk) in samples.chunks(per_group).enumerate() {
        let (m, j, v, p, _) = plan.cells[group_idx * per_group];
        let n = chunk.len() as f64;
        violations += chunk.iter().filter(|c| c.4).count();
        rows.push(SweepRow {
            machines: m,
            jobs: spec.jobs_labeled.then(|| spec.jobs[j]),
            alpha: plan.variants[v].0.clone(),
            policy: plan.policies[p].0.clone(),
            cells: chunk.len(),
            mean_makespan: chunk.iter().map(|c| c.0).sum::<f64>() / n,
            mean_ratio_to_lb: chunk.iter().map(|c| c.1).sum::<f64>() / n,
            worst_ratio_to_lb: chunk.iter().map(|c| c.1).fold(0.0, f64::max),
            mean_wait: chunk.iter().map(|c| c.2).sum::<f64>() / n,
            mean_utilization: chunk.iter().map(|c| c.3).sum::<f64>() / n,
            mean_exact_nodes_per_sec: spec
                .exact_probe
                .map(|_| chunk.iter().filter_map(|c| c.5).sum::<f64>() / n),
        });
    }
    (rows, violations)
}

/// Run the cross product and aggregate it into rows. Returns the rows and
/// the number of sanity violations (a schedule beating the certified lower
/// bound or failing validation — both impossible unless something is
/// broken).
pub fn execute(spec: &SweepSpec, opts: &CommonOpts) -> Result<(Vec<SweepRow>, usize), CliError> {
    let plan = plan(spec)?;
    let n_cells = plan.cells.len();
    let samples = run_cells(spec, &plan, opts, 0, n_cells);
    Ok(aggregate(spec, &plan, &samples))
}

// ---------------------------------------------------------------------------
// Sharded execution: manifest, per-shard rows + completion records, resume
// and merge. See the module docs for the file layout and guarantees.
// ---------------------------------------------------------------------------

/// The shard flag set of `resa sweep`.
#[derive(Debug, Clone, Default)]
struct ShardOpts {
    shards: Option<usize>,
    shard: Option<usize>,
    dir: Option<String>,
    resume: bool,
    merge: bool,
}

impl ShardOpts {
    fn validate(&self) -> Result<(), CliError> {
        let active = self.shards.is_some() || self.shard.is_some() || self.resume || self.merge;
        if !active && self.dir.is_none() {
            return Ok(());
        }
        if self.dir.is_none() {
            return Err(CliError::Usage(
                "--shards/--shard/--resume/--merge require --shard-dir".into(),
            ));
        }
        if self.merge {
            if self.shard.is_some() {
                return Err(CliError::Usage(
                    "--merge runs no cells; drop --shard".into(),
                ));
            }
            return Ok(());
        }
        let n = self
            .shards
            .ok_or_else(|| CliError::Usage("--shard-dir requires --shards (or --merge)".into()))?;
        if let Some(i) = self.shard {
            if i >= n {
                return Err(CliError::Usage(format!(
                    "--shard {i} is out of range for --shards {n}"
                )));
            }
        }
        Ok(())
    }
}

/// The fingerprint pinning a shard dir to one (spec text, base seed) pair:
/// hex FNV-1a of the raw spec bytes plus the seed. Editing the spec file —
/// even only whitespace — retires the dir, which errs on the side of
/// re-running cells over silently merging rows from a different sweep.
fn spec_fingerprint(text: &str, seed: u64) -> String {
    format!(
        "{:016x}",
        fnv1a64(format!("{text}\u{1f}seed={seed}").as_bytes())
    )
}

fn shard_io_err(path: &Path, e: impl std::fmt::Display) -> CliError {
    CliError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

fn rows_path(dir: &Path, i: usize) -> PathBuf {
    dir.join(format!("shard_{i:04}.rows.json"))
}

fn done_path(dir: &Path, i: usize) -> PathBuf {
    dir.join(format!("shard_{i:04}.done.json"))
}

fn manifest_value(
    spec: &SweepSpec,
    fingerprint: &str,
    seed: u64,
    total: usize,
    ranges: &[(usize, usize)],
) -> Value {
    Value::Object(vec![
        ("name".into(), Value::Str(spec.name.clone())),
        ("fingerprint".into(), Value::Str(fingerprint.into())),
        ("seed".into(), Value::UInt(seed)),
        ("total_cells".into(), Value::UInt(total as u64)),
        (
            "shards".into(),
            Value::Array(
                ranges
                    .iter()
                    .map(|&(s, e)| Value::Array(vec![Value::UInt(s as u64), Value::UInt(e as u64)]))
                    .collect(),
            ),
        ),
    ])
}

fn render_json_line(value: &Value) -> Vec<u8> {
    let mut text = serde_json::to_string(value).expect("value trees always render");
    text.push('\n');
    text.into_bytes()
}

fn read_json_file(path: &Path) -> Result<Value, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| shard_io_err(path, e))?;
    serde_json::from_str(&text).map_err(|e| shard_io_err(path, e))
}

/// Create the manifest, or verify an existing one matches exactly — a shard
/// dir belongs to ONE (spec, seed, shard split) and is never silently
/// repurposed.
fn write_or_verify_manifest(dir: &Path, expected: &Value) -> Result<(), CliError> {
    let path = dir.join("manifest.json");
    if path.exists() {
        let found = read_json_file(&path)?;
        if &found != expected {
            return Err(CliError::Parse(format!(
                "{}: shard dir was built from a different spec, seed or shard split — \
                 use a fresh --shard-dir",
                path.display()
            )));
        }
        return Ok(());
    }
    atomic_write(&path, &render_json_line(expected)).map_err(|e| shard_io_err(&path, e))
}

/// Encode one shard's samples. Floats travel as their IEEE-754 bit patterns
/// (`u64`), so a merge aggregates *exactly* the numbers the shard computed
/// and the merged report is byte-identical to an unsharded run.
fn rows_value(i: usize, range: (usize, usize), samples: &[Sample]) -> Value {
    Value::Object(vec![
        ("shard".into(), Value::UInt(i as u64)),
        ("start".into(), Value::UInt(range.0 as u64)),
        ("end".into(), Value::UInt(range.1 as u64)),
        (
            "samples".into(),
            Value::Array(
                samples
                    .iter()
                    .map(|&(mk, ratio, wait, util, viol, probe)| {
                        Value::Array(vec![
                            Value::UInt(mk.to_bits()),
                            Value::UInt(ratio.to_bits()),
                            Value::UInt(wait.to_bits()),
                            Value::UInt(util.to_bits()),
                            Value::Bool(viol),
                            probe.map_or(Value::Null, |p| Value::UInt(p.to_bits())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn decode_samples(
    rows: &Value,
    path: &Path,
    range: (usize, usize),
) -> Result<Vec<Sample>, CliError> {
    let bad = |what: &str| {
        CliError::Parse(format!(
            "{}: malformed shard rows file ({what})",
            path.display()
        ))
    };
    let field = |name: &str| -> Result<u64, CliError> {
        match rows.get(name) {
            Some(Value::UInt(v)) => Ok(*v),
            _ => Err(bad(&format!("missing field '{name}'"))),
        }
    };
    if field("start")? != range.0 as u64 || field("end")? != range.1 as u64 {
        return Err(bad("cell range does not match the manifest"));
    }
    let arr = rows
        .get("samples")
        .and_then(Value::as_array)
        .ok_or_else(|| bad("missing 'samples' array"))?;
    if arr.len() != range.1 - range.0 {
        return Err(bad("sample count does not match the shard's cell range"));
    }
    let bits = |v: &Value| match v {
        Value::UInt(b) => Some(f64::from_bits(*b)),
        _ => None,
    };
    arr.iter()
        .map(|entry| match entry.as_array() {
            Some([mk, ratio, wait, util, Value::Bool(viol), probe]) => {
                let probe = match probe {
                    Value::Null => None,
                    other => Some(bits(other).ok_or_else(|| bad("bad probe encoding"))?),
                };
                Ok((
                    bits(mk).ok_or_else(|| bad("bad float encoding"))?,
                    bits(ratio).ok_or_else(|| bad("bad float encoding"))?,
                    bits(wait).ok_or_else(|| bad("bad float encoding"))?,
                    bits(util).ok_or_else(|| bad("bad float encoding"))?,
                    *viol,
                    probe,
                ))
            }
            _ => Err(bad("a sample must be a six-element array")),
        })
        .collect()
}

/// Verify shard `i`'s completion record against its rows file. On success
/// returns the rows bytes the record's checksum vouches for; the error
/// string says what failed (missing record, mismatched range, checksum).
fn verify_shard(dir: &Path, i: usize, range: (usize, usize)) -> Result<Vec<u8>, String> {
    let done_p = done_path(dir, i);
    let text =
        std::fs::read_to_string(&done_p).map_err(|e| format!("{}: {e}", done_p.display()))?;
    let done: Value =
        serde_json::from_str(&text).map_err(|e| format!("{}: {e}", done_p.display()))?;
    let field = |name: &str| -> Result<u64, String> {
        match done.get(name) {
            Some(Value::UInt(v)) => Ok(*v),
            _ => Err(format!("{}: missing field '{name}'", done_p.display())),
        }
    };
    if field("shard")? != i as u64
        || field("start")? != range.0 as u64
        || field("end")? != range.1 as u64
    {
        return Err(format!(
            "{}: completion record does not match the manifest range",
            done_p.display()
        ));
    }
    let checksum = match done.get("rows_checksum") {
        Some(Value::Str(s)) => s.clone(),
        _ => {
            return Err(format!(
                "{}: missing field 'rows_checksum'",
                done_p.display()
            ))
        }
    };
    let rows_p = rows_path(dir, i);
    let bytes = std::fs::read(&rows_p).map_err(|e| format!("{}: {e}", rows_p.display()))?;
    if format!("{:016x}", fnv1a64(&bytes)) != checksum {
        return Err(format!(
            "{}: rows checksum mismatch (file changed after completion)",
            rows_p.display()
        ));
    }
    Ok(bytes)
}

/// Run shard `i`'s cells and persist rows + completion record. The rows go
/// first, then the record atomically — a crash between the two leaves an
/// unrecorded rows file that `--resume` correctly re-runs.
fn run_one_shard(
    spec: &SweepSpec,
    plan: &SweepPlan,
    opts: &CommonOpts,
    dir: &Path,
    i: usize,
    range: (usize, usize),
) -> Result<(usize, String), CliError> {
    let samples = run_cells(spec, plan, opts, range.0, range.1);
    let violations = samples.iter().filter(|c| c.4).count();
    let rows_bytes = render_json_line(&rows_value(i, range, &samples));
    let rows_p = rows_path(dir, i);
    atomic_write(&rows_p, &rows_bytes).map_err(|e| shard_io_err(&rows_p, e))?;
    let checksum = format!("{:016x}", fnv1a64(&rows_bytes));
    let done = Value::Object(vec![
        ("shard".into(), Value::UInt(i as u64)),
        ("start".into(), Value::UInt(range.0 as u64)),
        ("end".into(), Value::UInt(range.1 as u64)),
        ("cells".into(), Value::UInt((range.1 - range.0) as u64)),
        ("rows_checksum".into(), Value::Str(checksum.clone())),
    ]);
    let done_p = done_path(dir, i);
    atomic_write(&done_p, &render_json_line(&done)).map_err(|e| shard_io_err(&done_p, e))?;
    Ok((violations, checksum))
}

/// Load and verify every shard's rows, concatenated in cell order — the
/// exact sample sequence an unsharded run would have produced in memory.
fn collect_samples(dir: &Path, ranges: &[(usize, usize)]) -> Result<Vec<Sample>, CliError> {
    let mut samples = Vec::new();
    for (i, &range) in ranges.iter().enumerate() {
        let bytes = verify_shard(dir, i, range).map_err(|reason| {
            CliError::Parse(format!(
                "shard {i}/{} is not complete — {reason}; run it (or the whole sweep with \
                 --resume) before merging",
                ranges.len()
            ))
        })?;
        let text = String::from_utf8(bytes)
            .map_err(|_| CliError::Parse(format!("shard {i}: rows file is not UTF-8")))?;
        let rows: Value =
            serde_json::from_str(&text).map_err(|e| shard_io_err(&rows_path(dir, i), e))?;
        samples.extend(decode_samples(&rows, &rows_path(dir, i), range)?);
    }
    Ok(samples)
}

/// The sharded `resa sweep` driver: single-shard worker, resumable run-all,
/// and merge modes. `text` is the raw spec file (fingerprinted into the
/// manifest).
fn run_sharded(
    spec: &SweepSpec,
    opts: &CommonOpts,
    text: &str,
    sh: &ShardOpts,
) -> Result<Outcome, CliError> {
    let dir = PathBuf::from(sh.dir.as_deref().expect("validated by ShardOpts"));
    std::fs::create_dir_all(&dir).map_err(|e| shard_io_err(&dir, e))?;
    let plan = plan(spec)?;
    let total = plan.cells.len();
    let fingerprint = spec_fingerprint(text, opts.seed);

    if sh.merge {
        let manifest_p = dir.join("manifest.json");
        let manifest = read_json_file(&manifest_p)?;
        match manifest.get("fingerprint") {
            Some(Value::Str(found)) if *found == fingerprint => {}
            _ => {
                return Err(CliError::Parse(format!(
                    "{}: manifest fingerprint does not match this spec and seed",
                    manifest_p.display()
                )))
            }
        }
        let ranges: Vec<(usize, usize)> = manifest
            .get("shards")
            .map(Vec::<(u64, u64)>::from_value)
            .transpose()
            .ok()
            .flatten()
            .map(|rs| {
                rs.into_iter()
                    .map(|(s, e)| (s as usize, e as usize))
                    .collect()
            })
            .ok_or_else(|| {
                CliError::Parse(format!(
                    "{}: malformed 'shards' ranges",
                    manifest_p.display()
                ))
            })?;
        if let Some(n) = sh.shards {
            if ranges.len() != n {
                return Err(CliError::Usage(format!(
                    "--shards {n} does not match the manifest's {} shards",
                    ranges.len()
                )));
            }
        }
        if ranges.last().map(|r| r.1) != Some(total) && total != 0 {
            return Err(CliError::Parse(format!(
                "{}: manifest covers a different cell count than this spec",
                manifest_p.display()
            )));
        }
        let samples = collect_samples(&dir, &ranges)?;
        let (rows, violations) = aggregate(spec, &plan, &samples);
        return render(spec, &rows, violations, opts);
    }

    let n = sh.shards.expect("validated by ShardOpts");
    let ranges = contiguous_ranges(total, n);
    let expected = manifest_value(spec, &fingerprint, opts.seed, total, &ranges);
    write_or_verify_manifest(&dir, &expected)?;

    match sh.shard {
        // Worker mode: run exactly one shard and report its completion.
        Some(i) => {
            let range = ranges[i];
            if sh.resume && verify_shard(&dir, i, range).is_ok() {
                return Ok(Outcome {
                    stdout: format!(
                        "sweep '{}': shard {i}/{n} already complete — cells [{}, {}) skipped\n",
                        spec.name, range.0, range.1
                    ),
                    violations: 0,
                });
            }
            let (violations, checksum) = run_one_shard(spec, &plan, opts, &dir, i, range)?;
            Ok(Outcome {
                stdout: format!(
                    "sweep '{}': shard {i}/{n} complete — cells [{}, {}), rows checksum {checksum}\n",
                    spec.name, range.0, range.1
                ),
                violations,
            })
        }
        // Run-all mode: every shard in order (skipping verified ones under
        // --resume), then merge. Progress goes to stderr so stdout stays
        // byte-identical to the unsharded run.
        None => {
            for (i, &range) in ranges.iter().enumerate() {
                if sh.resume && verify_shard(&dir, i, range).is_ok() {
                    eprintln!("resa sweep: shard {i}/{n} already complete, skipped");
                    continue;
                }
                run_one_shard(spec, &plan, opts, &dir, i, range)?;
            }
            let samples = collect_samples(&dir, &ranges)?;
            let (rows, violations) = aggregate(spec, &plan, &samples);
            render(spec, &rows, violations, opts)
        }
    }
}

/// Generate one cell's job list.
fn generate_jobs(
    workload: &str,
    machines: u32,
    jobs: usize,
    arrivals: Option<u64>,
    seed: u64,
) -> Vec<Job> {
    match workload {
        "uniform" => UniformWorkload::for_cluster(machines, jobs).generate(seed),
        "lublin" => {
            let mut w = LublinWorkload::for_cluster(machines, jobs);
            if let Some(a) = arrivals {
                w = w.with_arrivals(a);
            }
            w.generate(seed)
        }
        _ => {
            let mut w = FeitelsonWorkload::for_cluster(machines, jobs);
            if let Some(a) = arrivals {
                w = w.with_arrivals(a);
            }
            w.generate(seed)
        }
    }
}

/// Render the aggregated rows.
fn render(
    spec: &SweepSpec,
    rows: &[SweepRow],
    violations: usize,
    opts: &CommonOpts,
) -> Result<Outcome, CliError> {
    // The jobs, α and exact-probe columns only appear when the spec asked
    // for those dimensions, so plain sweeps keep their previous table shape.
    let has_jobs = rows.iter().any(|r| r.jobs.is_some());
    let has_alpha = rows.iter().any(|r| r.alpha.is_some());
    let has_exact = rows.iter().any(|r| r.mean_exact_nodes_per_sec.is_some());
    let mut headers = vec!["m"];
    if has_jobs {
        headers.push("jobs");
    }
    if has_alpha {
        headers.push("alpha");
    }
    headers.extend([
        "policy",
        "cells",
        "mean Cmax",
        "mean Cmax/LB",
        "worst Cmax/LB",
        "mean wait",
        "mean util",
    ]);
    if has_exact {
        headers.push("exact nodes/s");
    }
    let mut table = Table::new(
        format!(
            "sweep '{}' — {} on {:?} machines, {} seeds per cell",
            spec.name, spec.workload, spec.machines, spec.seeds
        ),
        &headers,
    );
    for r in rows {
        let mut row = vec![r.machines.to_string()];
        if has_jobs {
            row.push(r.jobs.map_or_else(|| "-".to_string(), |j| j.to_string()));
        }
        if has_alpha {
            row.push(r.alpha.clone().unwrap_or_else(|| "-".to_string()));
        }
        row.extend([
            r.policy.clone(),
            r.cells.to_string(),
            fmt_f64(r.mean_makespan),
            fmt_f64(r.mean_ratio_to_lb),
            fmt_f64(r.worst_ratio_to_lb),
            fmt_f64(r.mean_wait),
            fmt_f64(r.mean_utilization),
        ]);
        if has_exact {
            row.push(fmt_f64(r.mean_exact_nodes_per_sec.unwrap_or(0.0)));
        }
        table.push_row(row);
    }
    let rendered = match opts.format {
        OutputFormat::Json => format!("{}\n", to_json(&rows.to_vec())),
        OutputFormat::Csv => table.to_csv(),
        OutputFormat::Table => {
            let mut out = table.to_text();
            out.push_str(&format!(
                "\nsanity violations: {violations} {}\n",
                if violations == 0 {
                    "(all schedules feasible and above the certified lower bound)"
                } else {
                    "(REPRODUCTION BROKEN)"
                }
            ));
            out
        }
    };
    let mut stdout = rendered.clone();
    if let Some(note) = opts.persist(&rendered)? {
        stdout.push_str(&note);
        stdout.push('\n');
    }
    Ok(Outcome { stdout, violations })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"{
        "name": "unit",
        "machines": [8],
        "jobs": 6,
        "seeds": 2,
        "workload": "feitelson",
        "arrivals": 4,
        "policies": ["easy", "offline:lsrc"],
        "reservations": { "family": "alpha", "alpha": "1/2", "count": 2, "horizon": 200, "max_duration": 40 }
    }"#;

    #[test]
    fn spec_parses_with_optional_fields_missing() {
        let spec: SweepSpec = serde_json::from_str(SPEC).unwrap();
        assert_eq!(spec.machines, vec![8]);
        assert_eq!(spec.policies.len(), 2);
        assert!(spec.reservations.is_some());

        let minimal: SweepSpec = serde_json::from_str(
            r#"{"machines": [4], "jobs": 3, "seeds": 1, "policies": ["fcfs"]}"#,
        )
        .unwrap();
        assert_eq!(minimal.name, "sweep");
        assert_eq!(minimal.workload, "feitelson");
        assert!(minimal.arrivals.is_none());
        assert!(minimal.reservations.is_none());

        assert!(serde_json::from_str::<SweepSpec>(r#"{"jobs": 3}"#).is_err());
    }

    #[test]
    fn unknown_top_level_field_is_rejected_with_suggestion() {
        // `reservation` for `reservations` used to run a reservation-free
        // sweep silently; now it is a hard parse error with a hint.
        let err = serde_json::from_str::<SweepSpec>(
            r#"{"machines": [4], "jobs": 3, "seeds": 1, "policies": ["fcfs"],
                "reservation": {"family": "alpha", "alpha": "1/2"}}"#,
        )
        .unwrap_err()
        .to_string();
        assert!(
            err.contains("unknown field 'reservation' in sweep spec"),
            "{err}"
        );
        assert!(err.contains("did you mean 'reservations'?"), "{err}");
        // Misspelled known sections are caught the same way.
        let err = serde_json::from_str::<SweepSpec>(
            r#"{"machines": [4], "jobs": 3, "seeds": 1, "polices": ["fcfs"]}"#,
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("unknown field 'polices'"), "{err}");
        assert!(err.contains("did you mean 'policies'?"), "{err}");
    }

    #[test]
    fn unknown_reservation_field_is_rejected() {
        let err = serde_json::from_str::<SweepSpec>(
            r#"{"machines": [4], "jobs": 3, "seeds": 1, "policies": ["fcfs"],
                "reservations": {"family": "alpha", "alpha": "1/2", "maxdur": 10}}"#,
        )
        .unwrap_err()
        .to_string();
        assert!(
            err.contains("unknown field 'maxdur' in the 'reservations' section"),
            "{err}"
        );
    }

    #[test]
    fn spec_errors_are_line_anchored_through_the_cli() {
        let dir = std::env::temp_dir().join("resa-sweep-strict-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad_spec.json");
        std::fs::write(
            &path,
            "{\n  \"machines\": [4],\n  \"jobs\": 3,\n  \"seeds\": 1,\n  \"policies\": [\"fcfs\"],\n  \"reservation\": {}\n}\n",
        )
        .unwrap();
        let err = crate::run(&["sweep", path.to_str().unwrap()]).unwrap_err();
        match err {
            CliError::Parse(msg) => {
                assert!(msg.contains("line 6:"), "{msg}");
                assert!(msg.contains("unknown field 'reservation'"), "{msg}");
            }
            other => panic!("expected a parse error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn alphas_list_sweeps_an_extra_dimension() {
        let spec: SweepSpec = serde_json::from_str(
            r#"{
                "machines": [8], "jobs": 5, "seeds": 2, "policies": ["fcfs", "easy"],
                "reservations": { "family": "alpha", "alphas": ["1/4", "1/2"],
                                  "count": 2, "horizon": 200, "max_duration": 40 }
            }"#,
        )
        .unwrap();
        let (rows, violations) = execute(&spec, &CommonOpts::default()).unwrap();
        assert_eq!(violations, 0);
        // 1 machine size × 2 alphas × 2 policies.
        assert_eq!(rows.len(), 4);
        let labels: Vec<_> = rows.iter().map(|r| r.alpha.as_deref()).collect();
        assert_eq!(
            labels,
            vec![Some("1/4"), Some("1/4"), Some("1/2"), Some("1/2")]
        );
        // A single 'alpha' keeps rows unlabeled (the previous shape).
        let spec: SweepSpec = serde_json::from_str(SPEC).unwrap();
        let (rows, _) = execute(&spec, &CommonOpts::default()).unwrap();
        assert!(rows.iter().all(|r| r.alpha.is_none()));
    }

    #[test]
    fn alpha_and_alphas_together_are_rejected() {
        let spec: SweepSpec = serde_json::from_str(
            r#"{
                "machines": [8], "jobs": 5, "seeds": 1, "policies": ["fcfs"],
                "reservations": { "family": "alpha", "alpha": "1/2", "alphas": ["1/4"] }
            }"#,
        )
        .unwrap();
        let err = execute(&spec, &CommonOpts::default()).unwrap_err();
        assert!(
            err.to_string().contains("either 'alpha' or 'alphas'"),
            "{err}"
        );
        let spec: SweepSpec = serde_json::from_str(
            r#"{
                "machines": [8], "jobs": 5, "seeds": 1, "policies": ["fcfs"],
                "reservations": { "family": "nonincreasing", "alphas": ["1/4"], "steps": 2 }
            }"#,
        )
        .unwrap();
        let err = execute(&spec, &CommonOpts::default()).unwrap_err();
        assert!(
            err.to_string()
                .contains("'alphas' only applies to the alpha family"),
            "{err}"
        );
        let spec: SweepSpec = serde_json::from_str(
            r#"{
                "machines": [8], "jobs": 5, "seeds": 1, "policies": ["fcfs"],
                "reservations": { "family": "alpha", "alphas": [] }
            }"#,
        )
        .unwrap();
        let err = execute(&spec, &CommonOpts::default()).unwrap_err();
        assert!(err.to_string().contains("non-empty 'alphas'"), "{err}");
    }

    #[test]
    fn exact_probe_budget_reports_mean_throughput() {
        let spec: SweepSpec = serde_json::from_str(
            r#"{
                "machines": [4], "jobs": 5, "seeds": 2, "policies": ["fcfs"],
                "exact_probe": 500
            }"#,
        )
        .unwrap();
        assert_eq!(spec.exact_probe, Some(500));
        let (rows, violations) = execute(&spec, &CommonOpts::default()).unwrap();
        assert_eq!(violations, 0);
        assert_eq!(rows.len(), 1);
        // 0.0 is legitimate (the greedy incumbent can match the lower bound,
        // leaving no tree to expand) — the knob's contract is that the
        // column is populated and finite.
        let nps = rows[0].mean_exact_nodes_per_sec.expect("probe ran");
        assert!(nps.is_finite() && nps >= 0.0, "bad throughput {nps}");
        // Without the knob the column stays off.
        let spec: SweepSpec = serde_json::from_str(SPEC).unwrap();
        let (rows, _) = execute(&spec, &CommonOpts::default()).unwrap();
        assert!(rows.iter().all(|r| r.mean_exact_nodes_per_sec.is_none()));
    }

    #[test]
    fn misspelled_residue_knobs_are_rejected() {
        let err = serde_json::from_str::<SweepSpec>(
            r#"{"machines": [4], "jobs": 3, "seeds": 1, "policies": ["fcfs"],
                "exactprobe": 100}"#,
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("unknown field 'exactprobe'"), "{err}");
        let err = serde_json::from_str::<SweepSpec>(
            r#"{"machines": [4], "jobs": 3, "seeds": 1, "policies": ["fcfs"],
                "reservations": {"family": "alpha", "alphass": ["1/2"]}}"#,
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("unknown field 'alphass'"), "{err}");
        assert!(err.contains("did you mean 'alphas'?"), "{err}");
    }

    #[test]
    fn jobs_list_sweeps_a_labeled_dimension() {
        // A `jobs` list becomes one more product dimension, labeled per row
        // — the same pattern as `alphas`.
        let spec: SweepSpec = serde_json::from_str(
            r#"{
                "machines": [8], "jobs": [4, 8], "seeds": 2, "policies": ["fcfs", "easy"]
            }"#,
        )
        .unwrap();
        assert!(spec.jobs_labeled);
        let (rows, violations) = execute(&spec, &CommonOpts::default()).unwrap();
        assert_eq!(violations, 0);
        // 1 machine size × 2 job counts × 2 policies.
        assert_eq!(rows.len(), 4);
        let labels: Vec<_> = rows.iter().map(|r| r.jobs).collect();
        assert_eq!(labels, vec![Some(4), Some(4), Some(8), Some(8)]);
        // A scalar `jobs` keeps rows unlabeled (the previous shape).
        let spec: SweepSpec = serde_json::from_str(SPEC).unwrap();
        assert!(!spec.jobs_labeled);
        let (rows, _) = execute(&spec, &CommonOpts::default()).unwrap();
        assert!(rows.iter().all(|r| r.jobs.is_none()));
        // A one-element list still labels: the user asked for the dimension.
        let spec: SweepSpec = serde_json::from_str(
            r#"{"machines": [4], "jobs": [3], "seeds": 1, "policies": ["fcfs"]}"#,
        )
        .unwrap();
        let (rows, _) = execute(&spec, &CommonOpts::default()).unwrap();
        assert_eq!(rows[0].jobs, Some(3));
        // Zero or empty job counts are plan-time errors.
        for bad in [
            r#"{"machines": [4], "jobs": [], "seeds": 1, "policies": ["fcfs"]}"#,
            r#"{"machines": [4], "jobs": [3, 0], "seeds": 1, "policies": ["fcfs"]}"#,
        ] {
            let spec: SweepSpec = serde_json::from_str(bad).unwrap();
            let err = execute(&spec, &CommonOpts::default()).unwrap_err();
            assert!(err.to_string().contains("positive job count"), "{err}");
        }
        // And non-integer shapes are parse errors, not silent defaults.
        let err = serde_json::from_str::<SweepSpec>(
            r#"{"machines": [4], "jobs": "many", "seeds": 1, "policies": ["fcfs"]}"#,
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("job count or a list of job counts"), "{err}");
    }

    #[test]
    fn misspelled_scenario_knobs_get_suggestions() {
        let err = serde_json::from_str::<SweepSpec>(
            r#"{"machines": [4], "jobs": 3, "seeds": 1, "policies": ["fcfs"],
                "deadline_frak": 2.0}"#,
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("unknown field 'deadline_frak'"), "{err}");
        assert!(err.contains("did you mean 'deadline_frac'?"), "{err}");
        let err = serde_json::from_str::<SweepSpec>(
            r#"{"machines": [4], "jobs": 3, "seeds": 1, "policies": ["fcfs"],
                "failure": {"count": 1, "width": 2, "max_duration": 5, "horizon": 10}}"#,
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("did you mean 'failures'?"), "{err}");
        // Inside the failures object the same strictness applies.
        let err = serde_json::from_str::<SweepSpec>(
            r#"{"machines": [4], "jobs": 3, "seeds": 1, "policies": ["fcfs"],
                "failures": {"count": 1, "width": 2, "maxduration": 5, "horizon": 10}}"#,
        )
        .unwrap_err()
        .to_string();
        assert!(
            err.contains("unknown field 'maxduration' in the 'failures' section"),
            "{err}"
        );
        assert!(err.contains("did you mean 'max_duration'?"), "{err}");
    }

    #[test]
    fn scenario_knob_combinations_are_validated() {
        let parse = |text: &str| serde_json::from_str::<SweepSpec>(text).unwrap();
        let cases: &[(&str, &str)] = &[
            (
                r#"{"machines": [4], "jobs": 3, "seeds": 1, "policies": ["fcfs"],
                    "deadline_frac": 2.0, "widths": [1, 2]}"#,
                "either 'deadline_frac' or 'widths'",
            ),
            (
                r#"{"machines": [4], "jobs": 3, "seeds": 1, "policies": ["fcfs"],
                    "deadline_frac": 2.0, "exact_probe": 100}"#,
                "'exact_probe' does not apply to scenario sweeps",
            ),
            (
                r#"{"machines": [4], "jobs": 3, "seeds": 1, "policies": ["offline:lsrc"],
                    "deadline_frac": 2.0}"#,
                "off-line",
            ),
            (
                r#"{"machines": [4], "jobs": 3, "seeds": 1, "policies": ["fcfs"],
                    "deadline_frac": 0.0}"#,
                "'deadline_frac' must be a positive finite number",
            ),
            (
                r#"{"machines": [4, 8], "jobs": 3, "seeds": 1, "policies": ["fcfs"],
                    "widths": [2, 6]}"#,
                "moldable width 6 not in 1..=4",
            ),
            (
                r#"{"machines": [4], "jobs": 3, "seeds": 1, "policies": ["fcfs"],
                    "widths": []}"#,
                "'widths' must be a non-empty menu",
            ),
            (
                r#"{"machines": [4], "jobs": 3, "seeds": 1, "policies": ["fcfs"],
                    "failures": {"count": 1, "width": 5, "max_duration": 4, "horizon": 10}}"#,
                "failure width 5 not in 1..=4",
            ),
            (
                r#"{"machines": [4], "jobs": 3, "seeds": 1, "policies": ["fcfs"],
                    "failures": {"count": 1, "width": 2, "max_duration": 0, "horizon": 10}}"#,
                "'failures.max_duration' must be positive",
            ),
        ];
        for (text, needle) in cases {
            let err = execute(&parse(text), &CommonOpts::default()).unwrap_err();
            assert!(err.to_string().contains(needle), "{needle}: {err}");
        }
    }

    #[test]
    fn deadline_cells_never_miss_a_committed_deadline() {
        let spec: SweepSpec = serde_json::from_str(
            r#"{
                "machines": [8], "jobs": 8, "seeds": 3, "arrivals": 4,
                "policies": ["fcfs", "easy", "greedy"], "deadline_frac": 3.0
            }"#,
        )
        .unwrap();
        let (rows, violations) = execute(&spec, &CommonOpts::default()).unwrap();
        assert_eq!(violations, 0, "a committed deadline was missed");
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert_eq!(r.cells, 3);
            assert!(r.mean_makespan > 0.0);
            assert!(r.mean_exact_nodes_per_sec.is_none());
        }
    }

    #[test]
    fn failure_cells_respect_the_drained_window_invariant() {
        let spec: SweepSpec = serde_json::from_str(
            r#"{
                "machines": [8], "jobs": [6, 10], "seeds": 3, "arrivals": 5,
                "policies": ["easy"],
                "reservations": { "family": "alpha", "alpha": "1/2",
                                  "count": 1, "horizon": 100, "max_duration": 20 },
                "failures": { "count": 3, "width": 3, "max_duration": 12, "horizon": 60 }
            }"#,
        )
        .unwrap();
        let (rows, violations) = execute(&spec, &CommonOpts::default()).unwrap();
        assert_eq!(violations, 0, "a job overlapped an active drain");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].jobs, Some(6));
        assert_eq!(rows[1].jobs, Some(10));
    }

    #[test]
    fn moldable_cells_run_and_stay_feasible() {
        let spec: SweepSpec = serde_json::from_str(
            r#"{
                "machines": [8], "jobs": 7, "seeds": 2, "arrivals": 3,
                "policies": ["easy", "greedy"], "widths": [1, 2, 4, 8],
                "failures": { "count": 2, "width": 2, "max_duration": 8, "horizon": 40 }
            }"#,
        )
        .unwrap();
        let (rows, violations) = execute(&spec, &CommonOpts::default()).unwrap();
        assert_eq!(violations, 0);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.mean_utilization <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn scenario_cells_are_runner_deterministic() {
        let spec: SweepSpec = serde_json::from_str(
            r#"{
                "machines": [8], "jobs": [5, 9], "seeds": 2, "arrivals": 4,
                "policies": ["easy"], "deadline_frac": 2.5,
                "failures": { "count": 2, "width": 2, "max_duration": 10, "horizon": 50 }
            }"#,
        )
        .unwrap();
        let par = execute(&spec, &CommonOpts::default()).unwrap();
        let seq = execute(
            &spec,
            &CommonOpts {
                threads: Some(1),
                ..CommonOpts::default()
            },
        )
        .unwrap();
        assert_eq!(to_json(&par.0.to_vec()), to_json(&seq.0.to_vec()));
    }

    #[test]
    fn execute_produces_one_row_per_machine_policy_pair() {
        let spec: SweepSpec = serde_json::from_str(SPEC).unwrap();
        let (rows, violations) = execute(&spec, &CommonOpts::default()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(violations, 0);
        for r in &rows {
            assert_eq!(r.cells, 2);
            assert!(r.mean_ratio_to_lb >= 1.0 - 1e-9);
            assert!(r.mean_utilization <= 1.0 + 1e-9);
        }
    }

    /// A `trace:` workload sweeps the cached trace's job prefix: widths are
    /// clamped into each swept cluster, over-long requests and unfetched
    /// references fail at plan time with actionable errors.
    #[test]
    fn trace_workloads_sweep_the_cached_prefix() {
        let _env = crate::trace_cache_env_lock();
        let cache =
            std::env::temp_dir().join(format!("resa-sweep-trace-cache-{}", std::process::id()));
        std::fs::remove_dir_all(&cache).ok();
        let src = cache.with_extension("src.swf");
        // 12 jobs with widths up to 8, so the m=4 cluster exercises the clamp.
        let mut text = String::from("; MaxProcs: 8\n");
        for i in 0..12u64 {
            text.push_str(&format!(
                "{} {} {} {}\n",
                i + 1,
                2 * i,
                3 + i % 5,
                1 + i % 8
            ));
        }
        std::fs::write(&src, &text).unwrap();
        TraceStore::at(cache.clone())
            .import("swept", &src, None)
            .unwrap();
        std::env::set_var("RESA_TRACE_CACHE", &cache);

        let spec: SweepSpec = serde_json::from_str(
            r#"{
                "machines": [4, 8], "jobs": [6, 12], "seeds": 2,
                "workload": "trace:swept", "policies": ["easy"]
            }"#,
        )
        .unwrap();
        let (rows, violations) = execute(&spec, &CommonOpts::default()).unwrap();
        assert_eq!(violations, 0);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert_eq!(r.cells, 2);
            assert!(r.mean_makespan > 0.0);
        }

        // Asking for more jobs than the trace holds is a plan-time error...
        let too_many: SweepSpec = serde_json::from_str(
            r#"{ "machines": [4], "jobs": 50, "seeds": 1,
                 "workload": "trace:swept", "policies": ["easy"] }"#,
        )
        .unwrap();
        let err = execute(&too_many, &CommonOpts::default()).unwrap_err();
        assert!(matches!(err, CliError::Parse(_)), "{err:?}");

        // ...and an unfetched reference degrades with the fetch hint.
        let missing: SweepSpec = serde_json::from_str(
            r#"{ "machines": [4], "jobs": 3, "seeds": 1,
                 "workload": "trace:absent", "policies": ["easy"] }"#,
        )
        .unwrap();
        let err = execute(&missing, &CommonOpts::default()).unwrap_err();
        assert!(err.to_string().contains("resa fetch absent"), "{err}");

        std::env::remove_var("RESA_TRACE_CACHE");
        std::fs::remove_dir_all(&cache).ok();
        std::fs::remove_file(&src).ok();
    }

    #[test]
    fn execute_is_runner_deterministic() {
        let spec: SweepSpec = serde_json::from_str(SPEC).unwrap();
        let par = execute(&spec, &CommonOpts::default()).unwrap();
        let seq = execute(
            &spec,
            &CommonOpts {
                threads: Some(1),
                ..CommonOpts::default()
            },
        )
        .unwrap();
        assert_eq!(to_json(&par.0.to_vec()), to_json(&seq.0.to_vec()));
    }
}
