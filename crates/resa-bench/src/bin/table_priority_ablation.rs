//! E8: ablation of the LSRC list order (the paper's suggested improvement).
//!
//! Thin shim over [`resa_bench::experiments::priority_report`] — the same
//! pipeline the `resa table priority` subcommand runs.

use resa_bench::experiments::{emit_report, priority_report, ExperimentOptions};

fn main() {
    emit_report(&priority_report(&ExperimentOptions::default()));
}
