//! `resa serve` — the resident scheduling service.
//!
//! The on-line counterpart of `resa replay`: instead of replaying a complete
//! trace, the process keeps a [`ScheduleService`] (a live
//! `Simulator`-equivalent decision loop over a resident availability
//! substrate) and answers a line-delimited JSON request protocol — over
//! stdin/stdout by default, over a TCP or Unix socket with `--listen` /
//! `--unix`, or against a checked-in script with `--script` (which is how
//! the golden tests and the CI smoke drive it deterministically).
//!
//! One request per line, one JSON response per line:
//!
//! ```text
//! {"op":"submit","width":2,"duration":10}        job arrival (optional "release";
//!                                                optional "deadline" + "admission"
//!                                                for SLA-gated submission)
//! {"op":"reserve","width":2,"duration":6,"start":4}
//! {"op":"cancel","reservation":0}
//! {"op":"query","width":4,"duration":5}          speculative earliest-fit probe
//! {"op":"inject","width":4,"duration":6,"start":9}   mid-run failure/maintenance
//! {"op":"revoke","drain":0}                      heal an injected drain early
//! {"op":"submit_moldable","widths":[1,2,4],"area":12} scheduler picks the width
//! {"op":"advance","to":20}                       move virtual time
//! {"op":"drain"}                                 run until every job completed
//! {"op":"stats"}                                 aggregate counters
//! {"op":"snapshot"}                              current schedule + metrics
//!                                                (optional "since" paginates
//!                                                records by job id)
//! {"op":"shutdown"}                              end the session
//! ```
//!
//! Unknown operations, unknown/misspelled fields (with a did-you-mean
//! suggestion), missing fields and infeasible requests are answered with
//! `{"ok":false,…}` without disturbing the resident state — rejected
//! reservation requests roll back transactionally through the substrate's
//! checkpoint marks. Blank lines and `#` comments are ignored, so request
//! scripts can be annotated.
//!
//! # Concurrency
//!
//! The socket transports (`--listen` / `--unix`) accept any number of
//! concurrent connections, one thread per session, all sharing one
//! resident state through [`ConcurrentService`]: mutating ops funnel into
//! the single writer thread (which applies them in batches — the arrival
//! order at the writer is the serial order of the service), while `query` /
//! `stats` / `snapshot` are answered on the session's own thread from the
//! latest published snapshot. Snapshots are republished *before* write
//! replies are delivered, so every session reads its own writes — a
//! single-client conversation is byte-identical to a sequential one, which
//! is what keeps the golden transcripts substrate- and
//! transport-independent. Stdin and `--script` sessions are single-client
//! by construction and run the sequential service directly.
//!
//! Two socket-facing options ride along: `--token <secret>` demands a
//! `{"op":"auth","token":…}` first request per connection (anything else is
//! answered with a structured error and the connection is closed), and
//! `--realtime` ticks virtual time to the wall clock (1 tick = 1 ms since
//! server start) before each request — `--script` rejects `--realtime`, so
//! checked-in transcripts stay deterministic.

use crate::fields::check_fields;
use crate::opts::CommonOpts;
use crate::replay::Substrate;
use crate::{CliError, Outcome};
use resa_core::capacity::Speculate;
use resa_core::prelude::*;
use resa_sim::prelude::*;
use serde::{Deserialize, Serialize, Value};
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Help text for `resa serve --help`.
pub const SERVE_HELP: &str = "\
resa serve — resident scheduling service over a line-delimited JSON protocol

USAGE:
    resa serve [OPTIONS]

OPTIONS:
    --machines <m>        cluster size                              [default: 16]
    --policy <name>       on-line decision policy: fcfs|easy|greedy [default: easy]
    --substrate <s>       availability backend: timeline | profile  [default: timeline]
                          (timeline = indexed segment tree with checkpoint/rollback
                          speculation; profile = the clone-based reference — responses
                          are identical, which is what the golden tests assert)
    --script <file>       read requests from <file> instead of stdin and print
                          the transcript (one response line per request line)
    --listen <addr>       serve a TCP socket (e.g. 127.0.0.1:7077); concurrent
                          sessions share the same resident state (single-writer
                          batching, snapshot-isolated reads)
    --unix <path>         serve a Unix domain socket at <path>, same concurrency
    --token <secret>      require {\"op\":\"auth\",\"token\":<secret>} as the first
                          request of every socket session (--listen/--unix only)
    --realtime            tick virtual time to the wall clock (1 tick = 1 ms
                          since server start) before each request; incompatible
                          with --script, whose transcripts stay deterministic
    --journal <file>      write-ahead journal every mutating op to <file> and
                          auto-recover from it on startup (recovered op/snapshot
                          counts are reported on stderr); a torn tail from a
                          crash is truncated and reported, never replayed
    --fsync <policy>      journal durability: every | batch | off
                          (every = fdatasync per op; batch = per batch, before
                          replies; off = OS-buffered)           [default: batch]
    --snapshot-every <n>  compact the journal to one snapshot record after <n>
                          ops, bounding recovery replay cost     [default: 1024]
    --idle-timeout <s>    close a socket session after <s> seconds without a
                          request (0 disables; --listen/--unix) [default: 600]
    --drain-mode <m>      what happens to jobs preempted by an injected drain:
                          restart (redo from scratch) | checkpoint (requeue the
                          remaining work only); re-supply at recovery — the
                          mode is configuration, not journaled state
                                                               [default: restart]
    --retire              retire completed jobs out of the resident state after
                          every time-advancing request, so a long-running
                          session's memory tracks the *active* jobs; snapshot
                          metrics still describe the whole run (merged
                          bit-exactly). Sequential transports only; incompatible
                          with --journal
    --records-out <file>  with --retire, append each retired job record to
                          <file> as one JSON line

REQUESTS (one JSON object per line; blank lines and # comments are ignored):
    {\"op\":\"submit\",\"width\":W,\"duration\":D[,\"release\":T]}   job arrival
        [,\"deadline\":T,\"admission\":\"reject\"|\"boost\"]  SLA gate: commit the job
        (guaranteed start reservation) iff it provably completes by T;
        otherwise reject the submission, or admit it queue-boosted
    {\"op\":\"reserve\",\"width\":W,\"duration\":D,\"start\":T}     add a reservation
    {\"op\":\"cancel\",\"reservation\":ID}                      cancel a reservation
    {\"op\":\"query\",\"width\":W,\"duration\":D[,\"not_before\":T]} earliest-fit probe
    {\"op\":\"inject\",\"width\":W,\"duration\":D,\"start\":T}  mid-run failure drain;
        running jobs in the window are preempted per --drain-mode (guaranteed
        jobs never are; the drain is rejected if it cannot fit without them)
    {\"op\":\"revoke\",\"drain\":ID}    heal an injected drain early (frees the
        not-yet-elapsed remainder of its window)
    {\"op\":\"submit_moldable\",\"widths\":[W,...],\"area\":A}  moldable job: the
        service picks the completion-minimizing width and submits rigidly
    {\"op\":\"advance\",\"to\":T}      move virtual time, draining completions
    {\"op\":\"drain\"}                 run until every submitted job completed
    {\"op\":\"stats\"}                 aggregate counters
    {\"op\":\"snapshot\"[,\"since\":ID]}  current schedule + metrics (replay shapes);
        \"since\" paginates the record list to job ids strictly greater than ID
        (pass the largest id already seen; metrics always cover the whole run)
    {\"op\":\"shutdown\"}              end the session

plus the common options: --seed --threads --format --quick --out
(--out persists the --script transcript; the other common flags are accepted
for CLI uniformity and do not affect the protocol)
";

/// One parsed protocol request.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Request {
    Submit {
        width: u32,
        duration: u64,
        release: Option<u64>,
        deadline: Option<u64>,
        admission: AdmissionPolicy,
    },
    Reserve {
        width: u32,
        duration: u64,
        start: u64,
    },
    Cancel {
        reservation: usize,
    },
    Inject {
        width: u32,
        duration: u64,
        start: u64,
    },
    Revoke {
        drain: usize,
    },
    SubmitMoldable {
        widths: Vec<u32>,
        area: u64,
    },
    Query {
        width: u32,
        duration: u64,
        not_before: Option<u64>,
    },
    Advance {
        to: u64,
    },
    Drain,
    Stats,
    Snapshot {
        since: Option<u64>,
    },
    Shutdown,
}

/// Parse one request line. Errors are protocol-level strings (the session
/// answers them with `{"ok":false,…}` and keeps serving).
fn parse_request(line: &str) -> Result<Request, String> {
    let value: Value = serde_json::from_str(line).map_err(|e| format!("bad JSON: {e}"))?;
    if value.as_object().is_none() {
        return Err("request must be a JSON object".to_string());
    }
    let op: String = required(&value, "request", "op")?;
    let ctx = format!("{op} request");
    let strict = |allowed: &[&str]| -> Result<(), String> {
        check_fields(&value, &ctx, allowed).map_err(|e| e.to_string())
    };
    match op.as_str() {
        "submit" => {
            strict(&[
                "op",
                "width",
                "duration",
                "release",
                "deadline",
                "admission",
            ])?;
            let deadline: Option<u64> = optional(&value, &ctx, "deadline")?;
            let admission = match optional::<String>(&value, &ctx, "admission")? {
                None => AdmissionPolicy::default(),
                Some(_) if deadline.is_none() => {
                    return Err(format!("field 'admission' in {ctx} requires 'deadline'"))
                }
                Some(text) => AdmissionPolicy::parse(&text)
                    .ok_or_else(|| format!("unknown admission policy '{text}' (reject|boost)"))?,
            };
            Ok(Request::Submit {
                width: required(&value, &ctx, "width")?,
                duration: required(&value, &ctx, "duration")?,
                release: optional(&value, &ctx, "release")?,
                deadline,
                admission,
            })
        }
        "reserve" => {
            strict(&["op", "width", "duration", "start"])?;
            Ok(Request::Reserve {
                width: required(&value, &ctx, "width")?,
                duration: required(&value, &ctx, "duration")?,
                start: required(&value, &ctx, "start")?,
            })
        }
        "cancel" => {
            strict(&["op", "reservation"])?;
            Ok(Request::Cancel {
                reservation: required(&value, &ctx, "reservation")?,
            })
        }
        "query" => {
            strict(&["op", "width", "duration", "not_before"])?;
            Ok(Request::Query {
                width: required(&value, &ctx, "width")?,
                duration: required(&value, &ctx, "duration")?,
                not_before: optional(&value, &ctx, "not_before")?,
            })
        }
        "advance" => {
            strict(&["op", "to"])?;
            Ok(Request::Advance {
                to: required(&value, &ctx, "to")?,
            })
        }
        "inject" => {
            strict(&["op", "width", "duration", "start"])?;
            Ok(Request::Inject {
                width: required(&value, &ctx, "width")?,
                duration: required(&value, &ctx, "duration")?,
                start: required(&value, &ctx, "start")?,
            })
        }
        "revoke" => {
            strict(&["op", "drain"])?;
            Ok(Request::Revoke {
                drain: required(&value, &ctx, "drain")?,
            })
        }
        "submit_moldable" => {
            strict(&["op", "widths", "area"])?;
            Ok(Request::SubmitMoldable {
                widths: required(&value, &ctx, "widths")?,
                area: required(&value, &ctx, "area")?,
            })
        }
        "drain" => strict(&["op"]).map(|()| Request::Drain),
        "stats" => strict(&["op"]).map(|()| Request::Stats),
        "snapshot" => {
            strict(&["op", "since"])?;
            Ok(Request::Snapshot {
                since: optional(&value, &ctx, "since")?,
            })
        }
        "shutdown" => strict(&["op"]).map(|()| Request::Shutdown),
        other => Err(format!(
            "unknown op '{other}' (submit|reserve|cancel|query|inject|revoke|submit_moldable|\
             advance|drain|stats|snapshot|shutdown)"
        )),
    }
}

fn required<T: Deserialize>(value: &Value, ctx: &str, name: &str) -> Result<T, String> {
    optional(value, ctx, name)?.ok_or_else(|| format!("missing required field '{name}' in {ctx}"))
}

fn optional<T: Deserialize>(value: &Value, ctx: &str, name: &str) -> Result<Option<T>, String> {
    match value.get(name) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => T::from_value(v)
            .map(Some)
            .map_err(|e| format!("field '{name}' in {ctx}: {e}")),
    }
}

// -- responses --------------------------------------------------------------

fn object(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn render(value: &Value) -> String {
    serde_json::to_string(value).expect("responses are serializable")
}

fn ok_response(op: &str, mut rest: Vec<(&str, Value)>) -> String {
    let mut fields = vec![("ok", Value::Bool(true)), ("op", Value::Str(op.into()))];
    fields.append(&mut rest);
    render(&object(fields))
}

fn error_response(op: Option<&str>, message: &str) -> String {
    let mut fields = vec![("ok", Value::Bool(false))];
    if let Some(op) = op {
        fields.push(("op", Value::Str(op.to_string())));
    }
    fields.push(("error", Value::Str(message.to_string())));
    render(&object(fields))
}

fn placements_value(started: &[Placement]) -> Value {
    Value::Array(
        started
            .iter()
            .map(|p| {
                object(vec![
                    ("job", Value::UInt(p.job.0 as u64)),
                    ("start", Value::UInt(p.start.ticks())),
                ])
            })
            .collect(),
    )
}

fn completions_value(completed: &[(JobId, Time)]) -> Value {
    Value::Array(
        completed
            .iter()
            .map(|&(id, at)| {
                object(vec![
                    ("job", Value::UInt(id.0 as u64)),
                    ("at", Value::UInt(at.ticks())),
                ])
            })
            .collect(),
    )
}

fn effects_fields(effects: &Effects) -> Vec<(&'static str, Value)> {
    vec![
        ("started", placements_value(&effects.started)),
        ("completed", completions_value(&effects.completed)),
    ]
}

// -- backends ---------------------------------------------------------------

/// The service face the protocol loop drives: implemented by the sequential
/// [`ScheduleService`] (stdin / `--script` sessions own their service) and
/// by [`ServiceClient`] (socket sessions share one [`ConcurrentService`]).
/// Methods return owned values because the concurrent client cannot borrow
/// from the writer thread's state — the sequential impl clones its reused
/// effects buffer, a per-request cost the protocol already pays in response
/// allocation.
trait Backend {
    fn submit(
        &mut self,
        width: u32,
        duration: Dur,
        release: Option<Time>,
    ) -> Result<(JobId, Effects), ServiceError>;
    fn reserve(
        &mut self,
        width: u32,
        duration: Dur,
        start: Time,
    ) -> Result<(usize, Effects), ServiceError>;
    fn cancel(&mut self, id: usize) -> Result<Effects, ServiceError>;
    /// Injects a drain window; returns its id and the jobs it preempted.
    fn inject(
        &mut self,
        width: u32,
        duration: Dur,
        start: Time,
    ) -> Result<(usize, Vec<JobId>, Effects), ServiceError>;
    fn revoke(&mut self, id: usize) -> Result<Effects, ServiceError>;
    fn submit_deadline(
        &mut self,
        width: u32,
        duration: Dur,
        release: Option<Time>,
        deadline: Time,
        admission: AdmissionPolicy,
    ) -> Result<(JobId, DeadlineOutcome, Effects), ServiceError>;
    fn submit_moldable(
        &mut self,
        widths: &[u32],
        area: u64,
    ) -> Result<(JobId, WidthChoice, Effects), ServiceError>;
    fn query(
        &mut self,
        width: u32,
        duration: Dur,
        not_before: Option<Time>,
    ) -> Result<Option<Time>, ServiceError>;
    /// Returns the virtual time after advancing together with the effects.
    fn advance(&mut self, to: Time) -> Result<(Time, Effects), ServiceError>;
    /// Clock-driven advance: clamps a stale target instead of rejecting it.
    fn advance_clamped(&mut self, to: Time) -> Result<(Time, Effects), ServiceError>;
    fn drain(&mut self) -> Result<(Time, Effects), ServiceError>;
    fn stats(&mut self) -> ServiceStats;
    fn policy(&self) -> ReferencePolicy;
    /// `(now, machines, records, metrics)` for the snapshot response.
    fn snapshot_parts(&mut self) -> (Time, u32, Vec<JobRecord>, SimMetrics);
}

impl<C: CapacityQuery + Speculate> Backend for ScheduleService<C> {
    fn submit(
        &mut self,
        width: u32,
        duration: Dur,
        release: Option<Time>,
    ) -> Result<(JobId, Effects), ServiceError> {
        ScheduleService::submit(self, width, duration, release).map(|(id, fx)| (id, fx.clone()))
    }

    fn reserve(
        &mut self,
        width: u32,
        duration: Dur,
        start: Time,
    ) -> Result<(usize, Effects), ServiceError> {
        ScheduleService::reserve(self, width, duration, start).map(|(id, fx)| (id, fx.clone()))
    }

    fn cancel(&mut self, id: usize) -> Result<Effects, ServiceError> {
        ScheduleService::cancel(self, id).cloned()
    }

    fn inject(
        &mut self,
        width: u32,
        duration: Dur,
        start: Time,
    ) -> Result<(usize, Vec<JobId>, Effects), ServiceError> {
        let res =
            ScheduleService::inject(self, width, duration, start).map(|(id, fx)| (id, fx.clone()));
        res.map(|(id, fx)| (id, self.last_preempted().to_vec(), fx))
    }

    fn revoke(&mut self, id: usize) -> Result<Effects, ServiceError> {
        ScheduleService::revoke(self, id).cloned()
    }

    fn submit_deadline(
        &mut self,
        width: u32,
        duration: Dur,
        release: Option<Time>,
        deadline: Time,
        admission: AdmissionPolicy,
    ) -> Result<(JobId, DeadlineOutcome, Effects), ServiceError> {
        ScheduleService::submit_deadline(self, width, duration, release, deadline, admission)
            .map(|(id, outcome, fx)| (id, outcome, fx.clone()))
    }

    fn submit_moldable(
        &mut self,
        widths: &[u32],
        area: u64,
    ) -> Result<(JobId, WidthChoice, Effects), ServiceError> {
        ScheduleService::submit_moldable(self, widths, area)
            .map(|(id, choice, fx)| (id, choice, fx.clone()))
    }

    fn query(
        &mut self,
        width: u32,
        duration: Dur,
        not_before: Option<Time>,
    ) -> Result<Option<Time>, ServiceError> {
        ScheduleService::query(self, width, duration, not_before)
    }

    fn advance(&mut self, to: Time) -> Result<(Time, Effects), ServiceError> {
        let fx = ScheduleService::advance(self, to)?.clone();
        Ok((self.now(), fx))
    }

    fn advance_clamped(&mut self, to: Time) -> Result<(Time, Effects), ServiceError> {
        let fx = ScheduleService::advance_clamped(self, to).clone();
        Ok((self.now(), fx))
    }

    fn drain(&mut self) -> Result<(Time, Effects), ServiceError> {
        let fx = ScheduleService::drain(self).clone();
        Ok((self.now(), fx))
    }

    fn stats(&mut self) -> ServiceStats {
        ScheduleService::stats(self)
    }

    fn policy(&self) -> ReferencePolicy {
        ScheduleService::policy(self)
    }

    fn snapshot_parts(&mut self) -> (Time, u32, Vec<JobRecord>, SimMetrics) {
        let (records, metrics) = ScheduleService::snapshot(self);
        (self.now(), self.machines(), records, metrics)
    }
}

impl Backend for ServiceClient {
    fn submit(
        &mut self,
        width: u32,
        duration: Dur,
        release: Option<Time>,
    ) -> Result<(JobId, Effects), ServiceError> {
        ServiceClient::submit(self, width, duration, release)
    }

    fn reserve(
        &mut self,
        width: u32,
        duration: Dur,
        start: Time,
    ) -> Result<(usize, Effects), ServiceError> {
        ServiceClient::reserve(self, width, duration, start)
    }

    fn cancel(&mut self, id: usize) -> Result<Effects, ServiceError> {
        ServiceClient::cancel(self, id)
    }

    fn inject(
        &mut self,
        width: u32,
        duration: Dur,
        start: Time,
    ) -> Result<(usize, Vec<JobId>, Effects), ServiceError> {
        ServiceClient::inject(self, width, duration, start)
    }

    fn revoke(&mut self, id: usize) -> Result<Effects, ServiceError> {
        ServiceClient::revoke(self, id)
    }

    fn submit_deadline(
        &mut self,
        width: u32,
        duration: Dur,
        release: Option<Time>,
        deadline: Time,
        admission: AdmissionPolicy,
    ) -> Result<(JobId, DeadlineOutcome, Effects), ServiceError> {
        ServiceClient::submit_deadline(self, width, duration, release, deadline, admission)
    }

    fn submit_moldable(
        &mut self,
        widths: &[u32],
        area: u64,
    ) -> Result<(JobId, WidthChoice, Effects), ServiceError> {
        ServiceClient::submit_moldable(self, widths.to_vec(), area)
    }

    fn query(
        &mut self,
        width: u32,
        duration: Dur,
        not_before: Option<Time>,
    ) -> Result<Option<Time>, ServiceError> {
        ServiceClient::query(self, width, duration, not_before)
    }

    fn advance(&mut self, to: Time) -> Result<(Time, Effects), ServiceError> {
        ServiceClient::advance(self, to)
    }

    fn advance_clamped(&mut self, to: Time) -> Result<(Time, Effects), ServiceError> {
        ServiceClient::advance_clamped(self, to)
    }

    fn drain(&mut self) -> Result<(Time, Effects), ServiceError> {
        ServiceClient::drain(self)
    }

    fn stats(&mut self) -> ServiceStats {
        ServiceClient::stats(self)
    }

    fn policy(&self) -> ReferencePolicy {
        self.snapshot().policy
    }

    fn snapshot_parts(&mut self) -> (Time, u32, Vec<JobRecord>, SimMetrics) {
        // One coherent snapshot for every field of the response.
        let snap = self.snapshot();
        let (records, metrics) = snap.records();
        (snap.stats.now, snap.stats.machines, records, metrics)
    }
}

/// Durable sequential sessions (`--journal` over stdio / `--script`): every
/// mutating op is write-ahead journaled; an op whose record cannot be made
/// durable is answered with a structured error and not applied.
impl<C: CapacityQuery + Speculate> Backend for JournaledService<C> {
    fn submit(
        &mut self,
        width: u32,
        duration: Dur,
        release: Option<Time>,
    ) -> Result<(JobId, Effects), ServiceError> {
        JournaledService::submit(self, width, duration, release)
    }

    fn reserve(
        &mut self,
        width: u32,
        duration: Dur,
        start: Time,
    ) -> Result<(usize, Effects), ServiceError> {
        JournaledService::reserve(self, width, duration, start)
    }

    fn cancel(&mut self, id: usize) -> Result<Effects, ServiceError> {
        JournaledService::cancel(self, id)
    }

    fn inject(
        &mut self,
        width: u32,
        duration: Dur,
        start: Time,
    ) -> Result<(usize, Vec<JobId>, Effects), ServiceError> {
        JournaledService::inject(self, width, duration, start)
    }

    fn revoke(&mut self, id: usize) -> Result<Effects, ServiceError> {
        JournaledService::revoke(self, id)
    }

    fn submit_deadline(
        &mut self,
        width: u32,
        duration: Dur,
        release: Option<Time>,
        deadline: Time,
        admission: AdmissionPolicy,
    ) -> Result<(JobId, DeadlineOutcome, Effects), ServiceError> {
        JournaledService::submit_deadline(self, width, duration, release, deadline, admission)
    }

    fn submit_moldable(
        &mut self,
        widths: &[u32],
        area: u64,
    ) -> Result<(JobId, WidthChoice, Effects), ServiceError> {
        JournaledService::submit_moldable(self, widths, area)
    }

    fn query(
        &mut self,
        width: u32,
        duration: Dur,
        not_before: Option<Time>,
    ) -> Result<Option<Time>, ServiceError> {
        JournaledService::query(self, width, duration, not_before)
    }

    fn advance(&mut self, to: Time) -> Result<(Time, Effects), ServiceError> {
        JournaledService::advance(self, to)
    }

    fn advance_clamped(&mut self, to: Time) -> Result<(Time, Effects), ServiceError> {
        JournaledService::advance_clamped(self, to)
    }

    fn drain(&mut self) -> Result<(Time, Effects), ServiceError> {
        JournaledService::drain(self)
    }

    fn stats(&mut self) -> ServiceStats {
        JournaledService::stats(self)
    }

    fn policy(&self) -> ReferencePolicy {
        JournaledService::policy(self)
    }

    fn snapshot_parts(&mut self) -> (Time, u32, Vec<JobRecord>, SimMetrics) {
        let (records, metrics) = JournaledService::snapshot(self);
        (self.now(), self.service().machines(), records, metrics)
    }
}

/// Record sink of a `--retire` session: counts every retired record and,
/// with `--records-out`, appends each as one JSON line. A write error is
/// reported once on stderr and disables the writer — the session keeps
/// serving (the records were already applied to the merged metrics).
struct FileRecordSink {
    out: Option<std::io::BufWriter<std::fs::File>>,
    path: String,
    written: usize,
}

impl FileRecordSink {
    fn new(path: Option<&str>) -> Result<Self, CliError> {
        let out = path
            .map(|p| {
                std::fs::File::create(p)
                    .map(std::io::BufWriter::new)
                    .map_err(|e| CliError::Io {
                        path: p.to_string(),
                        message: e.to_string(),
                    })
            })
            .transpose()?;
        Ok(FileRecordSink {
            out,
            path: path.unwrap_or_default().to_string(),
            written: 0,
        })
    }

    fn flush(&mut self) {
        if let Some(w) = &mut self.out {
            let _ = w.flush();
        }
    }
}

impl RecordSink for FileRecordSink {
    fn record(&mut self, rec: JobRecord) {
        self.written += 1;
        if let Some(w) = &mut self.out {
            if let Err(e) = writeln!(w, "{}", render(&rec.to_value())) {
                eprintln!(
                    "--records-out {}: {e}; further records are dropped",
                    self.path
                );
                self.out = None;
            }
        }
    }
}

/// A sequential [`ScheduleService`] that retires completed jobs into a
/// [`FileRecordSink`] after every time-advancing request (`--retire`), so a
/// long-running session's resident set tracks the *active* jobs. Snapshot
/// metrics stay bit-identical to a never-retired session; the retired
/// records leave through the sink and via `snapshot`+`since` pagination
/// before they go.
struct RetiringService<C: CapacityQuery + Speculate> {
    svc: ScheduleService<C>,
    sink: FileRecordSink,
}

impl<C: CapacityQuery + Speculate> RetiringService<C> {
    fn retire(&mut self) {
        if self.svc.retire_completed(&mut self.sink) > 0 {
            self.sink.flush();
        }
    }
}

impl<C: CapacityQuery + Speculate> Backend for RetiringService<C> {
    fn submit(
        &mut self,
        width: u32,
        duration: Dur,
        release: Option<Time>,
    ) -> Result<(JobId, Effects), ServiceError> {
        Backend::submit(&mut self.svc, width, duration, release)
    }

    fn reserve(
        &mut self,
        width: u32,
        duration: Dur,
        start: Time,
    ) -> Result<(usize, Effects), ServiceError> {
        Backend::reserve(&mut self.svc, width, duration, start)
    }

    fn cancel(&mut self, id: usize) -> Result<Effects, ServiceError> {
        Backend::cancel(&mut self.svc, id)
    }

    fn inject(
        &mut self,
        width: u32,
        duration: Dur,
        start: Time,
    ) -> Result<(usize, Vec<JobId>, Effects), ServiceError> {
        Backend::inject(&mut self.svc, width, duration, start)
    }

    fn revoke(&mut self, id: usize) -> Result<Effects, ServiceError> {
        Backend::revoke(&mut self.svc, id)
    }

    fn submit_deadline(
        &mut self,
        width: u32,
        duration: Dur,
        release: Option<Time>,
        deadline: Time,
        admission: AdmissionPolicy,
    ) -> Result<(JobId, DeadlineOutcome, Effects), ServiceError> {
        Backend::submit_deadline(&mut self.svc, width, duration, release, deadline, admission)
    }

    fn submit_moldable(
        &mut self,
        widths: &[u32],
        area: u64,
    ) -> Result<(JobId, WidthChoice, Effects), ServiceError> {
        Backend::submit_moldable(&mut self.svc, widths, area)
    }

    fn query(
        &mut self,
        width: u32,
        duration: Dur,
        not_before: Option<Time>,
    ) -> Result<Option<Time>, ServiceError> {
        Backend::query(&mut self.svc, width, duration, not_before)
    }

    fn advance(&mut self, to: Time) -> Result<(Time, Effects), ServiceError> {
        let res = Backend::advance(&mut self.svc, to);
        self.retire();
        res
    }

    fn advance_clamped(&mut self, to: Time) -> Result<(Time, Effects), ServiceError> {
        let res = Backend::advance_clamped(&mut self.svc, to);
        self.retire();
        res
    }

    fn drain(&mut self) -> Result<(Time, Effects), ServiceError> {
        let res = Backend::drain(&mut self.svc);
        self.retire();
        res
    }

    fn stats(&mut self) -> ServiceStats {
        Backend::stats(&mut self.svc)
    }

    fn policy(&self) -> ReferencePolicy {
        Backend::policy(&self.svc)
    }

    fn snapshot_parts(&mut self) -> (Time, u32, Vec<JobRecord>, SimMetrics) {
        Backend::snapshot_parts(&mut self.svc)
    }
}

/// Execute one request against the resident service, producing the response
/// line (without trailing newline) and whether the session should end.
fn handle<B: Backend>(svc: &mut B, line: &str) -> (String, bool) {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(e) => return (error_response(None, &e), false),
    };
    let response = match request {
        Request::Submit {
            width,
            duration,
            release,
            deadline: None,
            admission: _,
        } => match svc.submit(width, Dur(duration), release.map(Time)) {
            Ok((id, fx)) => {
                let mut fields = vec![("job", Value::UInt(id.0 as u64))];
                fields.extend(effects_fields(&fx));
                ok_response("submit", fields)
            }
            Err(e) => error_response(Some("submit"), &e.to_string()),
        },
        Request::Submit {
            width,
            duration,
            release,
            deadline: Some(deadline),
            admission,
        } => match svc.submit_deadline(
            width,
            Dur(duration),
            release.map(Time),
            Time(deadline),
            admission,
        ) {
            Ok((id, outcome, fx)) => {
                let mut fields = vec![("job", Value::UInt(id.0 as u64))];
                match outcome {
                    DeadlineOutcome::Committed { start, completion } => {
                        fields.push(("outcome", Value::Str("committed".into())));
                        fields.push(("start", Value::UInt(start.ticks())));
                        fields.push(("completion", Value::UInt(completion.ticks())));
                    }
                    DeadlineOutcome::Boosted => {
                        fields.push(("outcome", Value::Str("boosted".into())));
                    }
                }
                fields.extend(effects_fields(&fx));
                ok_response("submit", fields)
            }
            Err(e) => error_response(Some("submit"), &e.to_string()),
        },
        Request::Reserve {
            width,
            duration,
            start,
        } => match svc.reserve(width, Dur(duration), Time(start)) {
            Ok((id, fx)) => {
                let mut fields = vec![("reservation", Value::UInt(id as u64))];
                fields.extend(effects_fields(&fx));
                ok_response("reserve", fields)
            }
            Err(e) => error_response(Some("reserve"), &e.to_string()),
        },
        Request::Cancel { reservation } => match svc.cancel(reservation) {
            Ok(fx) => {
                let mut fields = vec![("reservation", Value::UInt(reservation as u64))];
                fields.extend(effects_fields(&fx));
                ok_response("cancel", fields)
            }
            Err(e) => error_response(Some("cancel"), &e.to_string()),
        },
        Request::Inject {
            width,
            duration,
            start,
        } => match svc.inject(width, Dur(duration), Time(start)) {
            Ok((id, preempted, fx)) => {
                let mut fields = vec![
                    ("drain", Value::UInt(id as u64)),
                    (
                        "preempted",
                        Value::Array(preempted.iter().map(|j| Value::UInt(j.0 as u64)).collect()),
                    ),
                ];
                fields.extend(effects_fields(&fx));
                ok_response("inject", fields)
            }
            Err(e) => error_response(Some("inject"), &e.to_string()),
        },
        Request::Revoke { drain } => match svc.revoke(drain) {
            Ok(fx) => {
                let mut fields = vec![("drain", Value::UInt(drain as u64))];
                fields.extend(effects_fields(&fx));
                ok_response("revoke", fields)
            }
            Err(e) => error_response(Some("revoke"), &e.to_string()),
        },
        Request::SubmitMoldable { widths, area } => match svc.submit_moldable(&widths, area) {
            Ok((id, choice, fx)) => {
                let mut fields = vec![
                    ("job", Value::UInt(id.0 as u64)),
                    ("width", Value::UInt(choice.width as u64)),
                    ("duration", Value::UInt(choice.duration.0)),
                ];
                fields.extend(effects_fields(&fx));
                ok_response("submit_moldable", fields)
            }
            Err(e) => error_response(Some("submit_moldable"), &e.to_string()),
        },
        Request::Query {
            width,
            duration,
            not_before,
        } => match svc.query(width, Dur(duration), not_before.map(Time)) {
            Ok(Some(start)) => ok_response(
                "query",
                vec![
                    ("start", Value::UInt(start.ticks())),
                    (
                        "completion",
                        Value::UInt(start.saturating_add(Dur(duration)).ticks()),
                    ),
                ],
            ),
            Ok(None) => ok_response("query", vec![("start", Value::Null)]),
            Err(e) => error_response(Some("query"), &e.to_string()),
        },
        Request::Advance { to } => match svc.advance(Time(to)) {
            Ok((now, fx)) => {
                let mut fields = vec![("now", Value::UInt(now.ticks()))];
                fields.extend(effects_fields(&fx));
                ok_response("advance", fields)
            }
            Err(e) => error_response(Some("advance"), &e.to_string()),
        },
        Request::Drain => match svc.drain() {
            Ok((now, fx)) => {
                let mut fields = vec![("now", Value::UInt(now.ticks()))];
                fields.extend(effects_fields(&fx));
                ok_response("drain", fields)
            }
            Err(e) => error_response(Some("drain"), &e.to_string()),
        },
        Request::Stats => {
            let s = svc.stats();
            ok_response(
                "stats",
                vec![
                    ("now", Value::UInt(s.now.ticks())),
                    ("machines", Value::UInt(s.machines as u64)),
                    ("policy", Value::Str(svc.policy().name().to_string())),
                    ("submitted", Value::UInt(s.submitted as u64)),
                    ("pending", Value::UInt(s.pending as u64)),
                    ("waiting", Value::UInt(s.waiting as u64)),
                    ("running", Value::UInt(s.running as u64)),
                    ("completed", Value::UInt(s.completed as u64)),
                    ("reservations", Value::UInt(s.reservations as u64)),
                    ("decisions", Value::UInt(s.decisions)),
                    ("makespan", Value::UInt(s.makespan.ticks())),
                ],
            )
        }
        Request::Snapshot { since } => {
            let (now, machines, mut records, metrics) = svc.snapshot_parts();
            // `since` paginates the record list by job id (strictly greater,
            // so a poller passes the largest id it has seen). The metrics
            // still describe the whole run. Absent `since`, the response is
            // byte-identical to the pre-pagination protocol.
            if let Some(since) = since {
                records.retain(|r| r.job.0 as u64 > since);
            }
            ok_response(
                "snapshot",
                vec![
                    ("now", Value::UInt(now.ticks())),
                    ("machines", Value::UInt(machines as u64)),
                    ("policy", Value::Str(svc.policy().name().to_string())),
                    ("schedule", records.to_value()),
                    ("metrics", metrics.to_value()),
                ],
            )
        }
        Request::Shutdown => return (ok_response("shutdown", Vec::new()), true),
    };
    (response, false)
}

// -- sessions ---------------------------------------------------------------

/// Per-session policy knobs shared by every transport.
#[derive(Default)]
struct SessionCfg {
    /// When set, the first request of the session must be
    /// `{"op":"auth","token":<token>}`; anything else is answered with a
    /// structured error and the connection is closed.
    token: Option<String>,
    /// When set, virtual time is advanced (clamped) to the elapsed wall
    /// clock in milliseconds since this instant before each request.
    realtime: Option<std::time::Instant>,
}

/// Validate the first request of a token-guarded session. Returns the
/// response line and whether the session may proceed.
fn check_auth(expected: &str, line: &str) -> (String, bool) {
    let auth = (|| -> Result<String, String> {
        let value: Value = serde_json::from_str(line).map_err(|e| format!("bad JSON: {e}"))?;
        if value.as_object().is_none() {
            return Err("request must be a JSON object".to_string());
        }
        let op: String = required(&value, "request", "op")?;
        if op != "auth" {
            return Err(format!(
                "authentication required: the first request must be an auth op, got '{op}'"
            ));
        }
        check_fields(&value, "auth request", &["op", "token"]).map_err(|e| e.to_string())?;
        required(&value, "auth request", "token")
    })();
    match auth {
        Ok(token) if token == expected => (ok_response("auth", Vec::new()), true),
        Ok(_) => (error_response(Some("auth"), "invalid token"), false),
        Err(e) => (error_response(Some("auth"), &e), false),
    }
}

/// Longest accepted request line, in bytes (including the newline). A peer
/// streaming an endless line used to grow `read_line`'s buffer without
/// bound; now the line is discarded as it arrives and answered with a
/// structured error, and the session keeps serving.
const MAX_LINE_BYTES: usize = 64 * 1024;

/// What one bounded line read produced.
enum LineRead {
    /// A complete line (possibly the final unterminated one) is in the
    /// buffer.
    Line,
    /// The line exceeded [`MAX_LINE_BYTES`]; all of it was discarded.
    Overflow {
        /// Total bytes the oversized line occupied.
        discarded: u64,
    },
    /// Clean end of input.
    Eof,
    /// The socket's read timeout expired between requests.
    TimedOut,
}

/// Read one `\n`-terminated line into `buf` without ever holding more than
/// [`MAX_LINE_BYTES`] of it. Oversized lines are consumed (so the stream
/// stays line-synchronized) but not stored. A read timeout configured on
/// the underlying socket surfaces as [`LineRead::TimedOut`].
fn read_bounded_line(reader: &mut impl BufRead, buf: &mut Vec<u8>) -> std::io::Result<LineRead> {
    use std::io::ErrorKind;
    buf.clear();
    let mut discarded = 0u64;
    loop {
        let chunk = match reader.fill_buf() {
            Ok(c) => c,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Ok(LineRead::TimedOut)
            }
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            // EOF. A trailing unterminated line is processed like
            // `read_line` would have.
            return Ok(if discarded > 0 {
                LineRead::Overflow { discarded }
            } else if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line
            });
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.map_or(chunk.len(), |i| i + 1);
        if discarded > 0 {
            discarded += take as u64;
        } else if buf.len() + take > MAX_LINE_BYTES {
            // The whole line is oversized: switch to discard mode.
            discarded = (buf.len() + take) as u64;
            buf.clear();
        } else {
            buf.extend_from_slice(&chunk[..take]);
        }
        reader.consume(take);
        if newline.is_some() {
            return Ok(if discarded > 0 {
                LineRead::Overflow { discarded }
            } else {
                LineRead::Line
            });
        }
    }
}

fn send_line(writer: &mut impl Write, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Serve one session: read request lines from `reader`, write one response
/// line per request to `writer` (flushed per line, so socket and pipe peers
/// see answers immediately). Returns whether a `shutdown` request ended the
/// session (as opposed to EOF, an auth rejection, or an idle timeout).
///
/// Oversized (> [`MAX_LINE_BYTES`]) and non-UTF-8 lines are answered with a
/// structured error and the session keeps serving; an expired socket read
/// timeout is answered with a structured close line and ends the session.
fn serve_session<B: Backend>(
    svc: &mut B,
    cfg: &SessionCfg,
    mut reader: impl BufRead,
    mut writer: impl Write,
) -> std::io::Result<bool> {
    // One raw-line buffer for the whole session instead of a fresh `String`
    // per request (`BufRead::lines` allocates one per iteration).
    let mut raw: Vec<u8> = Vec::new();
    let mut authed = cfg.token.is_none();
    loop {
        match read_bounded_line(&mut reader, &mut raw)? {
            LineRead::Eof => return Ok(false),
            LineRead::TimedOut => {
                // Best-effort close line: the peer may already be gone.
                let _ = send_line(
                    &mut writer,
                    &error_response(None, "idle timeout: closing session"),
                );
                return Ok(false);
            }
            LineRead::Overflow { discarded } => {
                send_line(
                    &mut writer,
                    &error_response(
                        None,
                        &format!(
                            "request line exceeds {MAX_LINE_BYTES} bytes \
                             ({discarded} bytes discarded)"
                        ),
                    ),
                )?;
                continue;
            }
            LineRead::Line => {}
        }
        let Ok(text) = std::str::from_utf8(&raw) else {
            send_line(
                &mut writer,
                &error_response(None, "request line is not valid UTF-8"),
            )?;
            continue;
        };
        let trimmed = text.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if !authed {
            let (response, pass) = check_auth(cfg.token.as_deref().unwrap_or(""), trimmed);
            send_line(&mut writer, &response)?;
            if !pass {
                return Ok(false);
            }
            authed = true;
            continue;
        }
        if let Some(base) = cfg.realtime {
            // Tick the session's virtual clock to the wall clock. Starts
            // and completions the tick triggers surface through later
            // `stats` / `snapshot` responses, not through this request's.
            let ms = u64::try_from(base.elapsed().as_millis()).unwrap_or(u64::MAX);
            let _ = svc.advance_clamped(Time(ms));
        }
        let (response, done) = handle(svc, trimmed);
        send_line(&mut writer, &response)?;
        if done {
            return Ok(true);
        }
    }
}

/// Drive a whole request script in-process and return the transcript. This
/// is the deterministic face the golden tests and the CI smoke use: always
/// the sequential service, never realtime, never token-guarded.
pub fn run_script(
    script: &str,
    machines: u32,
    policy: ReferencePolicy,
    substrate: Substrate,
) -> String {
    run_script_with_mode(script, machines, policy, substrate, DrainMode::Restart)
}

/// [`run_script`] with an explicit drain preemption mode (`--drain-mode`).
pub fn run_script_with_mode(
    script: &str,
    machines: u32,
    policy: ReferencePolicy,
    substrate: Substrate,
    mode: DrainMode,
) -> String {
    let mut out = Vec::new();
    let cfg = SessionCfg::default();
    match substrate {
        Substrate::Timeline => {
            let mut svc = ScheduleService::new(policy, AvailabilityTimeline::constant(machines));
            svc.set_drain_mode(mode);
            serve_session(&mut svc, &cfg, script.as_bytes(), &mut out).expect("in-memory I/O");
        }
        Substrate::Profile => {
            let mut svc = ScheduleService::new(policy, ResourceProfile::constant(machines));
            svc.set_drain_mode(mode);
            serve_session(&mut svc, &cfg, script.as_bytes(), &mut out).expect("in-memory I/O");
        }
    }
    String::from_utf8(out).expect("responses are UTF-8")
}

/// [`run_script`], but with `--retire`: completed jobs are retired out of
/// the resident state after every time-advancing request, optionally
/// streamed to a `--records-out` file as JSON lines.
fn run_script_retiring(
    script: &str,
    machines: u32,
    policy: ReferencePolicy,
    substrate: Substrate,
    mode: DrainMode,
    records_out: Option<&str>,
) -> Result<String, CliError> {
    let cfg = SessionCfg::default();
    let mut out = Vec::new();
    let sink = FileRecordSink::new(records_out)?;
    match substrate {
        Substrate::Timeline => {
            let mut svc = ScheduleService::new(policy, AvailabilityTimeline::constant(machines));
            svc.set_drain_mode(mode);
            let mut retiring = RetiringService { svc, sink };
            serve_session(&mut retiring, &cfg, script.as_bytes(), &mut out).expect("in-memory I/O");
            retiring.sink.flush();
        }
        Substrate::Profile => {
            let mut svc = ScheduleService::new(policy, ResourceProfile::constant(machines));
            svc.set_drain_mode(mode);
            let mut retiring = RetiringService { svc, sink };
            serve_session(&mut retiring, &cfg, script.as_bytes(), &mut out).expect("in-memory I/O");
            retiring.sink.flush();
        }
    }
    Ok(String::from_utf8(out).expect("responses are UTF-8"))
}

/// Journal configuration as parsed from the CLI.
struct JournalOpts {
    path: String,
    fsync: FsyncPolicy,
    snapshot_every: u64,
}

/// Open (or create) the journal, recovering whatever it holds, and report
/// the recovery on **stderr** — stdout carries only protocol responses, so
/// golden transcripts stay byte-stable whether or not a journal rides
/// along.
fn open_journal(
    jo: &JournalOpts,
    machines: u32,
    policy: ReferencePolicy,
) -> Result<(OpJournal, Recovered), CliError> {
    let cfg = JournalCfg {
        fsync: jo.fsync,
        snapshot_every: jo.snapshot_every,
    };
    let (journal, recovered) =
        OpJournal::open(&jo.path, machines, policy, cfg).map_err(|e| CliError::Io {
            path: jo.path.clone(),
            message: e.to_string(),
        })?;
    if recovered.resumed {
        let torn = recovered
            .torn
            .as_ref()
            .map(|t| {
                format!(
                    " (torn tail of {} bytes discarded: {})",
                    t.dropped_bytes, t.reason
                )
            })
            .unwrap_or_default();
        eprintln!(
            "journal {}: recovered {} op record(s), {} snapshot record(s){torn}",
            jo.path, recovered.op_records, recovered.snapshot_records
        );
    }
    Ok((journal, recovered))
}

/// [`run_script`], but durable: recover the journal, replay it, serve the
/// script through a [`JournaledService`], and leave the journal ready for
/// the next resume.
fn run_script_journaled(
    script: &str,
    machines: u32,
    policy: ReferencePolicy,
    substrate: Substrate,
    mode: DrainMode,
    jo: &JournalOpts,
) -> Result<String, CliError> {
    let (journal, recovered) = open_journal(jo, machines, policy)?;
    let cfg = SessionCfg::default();
    let mut out = Vec::new();
    match substrate {
        Substrate::Timeline => {
            let svc = recovered.restore_service_with_mode(
                policy,
                AvailabilityTimeline::constant(machines),
                mode,
            );
            let mut journaled = JournaledService::new(svc, journal);
            serve_session(&mut journaled, &cfg, script.as_bytes(), &mut out)
                .expect("in-memory I/O");
        }
        Substrate::Profile => {
            let svc = recovered.restore_service_with_mode(
                policy,
                ResourceProfile::constant(machines),
                mode,
            );
            let mut journaled = JournaledService::new(svc, journal);
            serve_session(&mut journaled, &cfg, script.as_bytes(), &mut out)
                .expect("in-memory I/O");
        }
    }
    Ok(String::from_utf8(out).expect("responses are UTF-8"))
}

/// How the session's bytes reach the service.
enum Transport {
    Stdio,
    Script(String),
    Tcp(String),
    #[cfg(unix)]
    Unix(String),
}

/// `resa serve [options]`.
pub fn run(args: &[&str]) -> Result<Outcome, CliError> {
    if args.first() == Some(&"--help") {
        return Ok(Outcome {
            stdout: SERVE_HELP.to_string(),
            violations: 0,
        });
    }
    let mut machines: u32 = 16;
    let mut policy = ReferencePolicy::Easy;
    let mut substrate = Substrate::Timeline;
    let mut transport = Transport::Stdio;
    let mut token: Option<String> = None;
    let mut realtime = false;
    let mut journal_path: Option<String> = None;
    let mut fsync: Option<FsyncPolicy> = None;
    let mut snapshot_every: Option<u64> = None;
    let mut idle_timeout: Option<u64> = None;
    let mut drain_mode = DrainMode::Restart;
    let mut retire = false;
    let mut records_out: Option<String> = None;
    let opts = CommonOpts::parse(args, &mut |flag, value| {
        let take = |name: &str| -> Result<&str, CliError> {
            value.ok_or_else(|| CliError::Usage(format!("{name} expects a value")))
        };
        match flag {
            "--machines" => {
                machines = take("--machines")?
                    .parse()
                    .map_err(|_| CliError::Usage("--machines expects a positive integer".into()))?;
                if machines == 0 {
                    return Err(CliError::Usage("--machines must be at least 1".into()));
                }
                Ok(1)
            }
            "--policy" => {
                policy = match take("--policy")? {
                    "fcfs" => ReferencePolicy::Fcfs,
                    "easy" => ReferencePolicy::Easy,
                    "greedy" => ReferencePolicy::Greedy,
                    other => {
                        return Err(CliError::Usage(format!(
                            "unknown policy '{other}' (fcfs|easy|greedy)"
                        )))
                    }
                };
                Ok(1)
            }
            "--substrate" => {
                substrate = match take("--substrate")? {
                    "timeline" => Substrate::Timeline,
                    "profile" => Substrate::Profile,
                    other => {
                        return Err(CliError::Usage(format!(
                            "unknown substrate '{other}' (timeline|profile)"
                        )))
                    }
                };
                Ok(1)
            }
            "--script" => {
                transport = Transport::Script(take("--script")?.to_string());
                Ok(1)
            }
            "--listen" => {
                transport = Transport::Tcp(take("--listen")?.to_string());
                Ok(1)
            }
            "--unix" => {
                #[cfg(unix)]
                {
                    transport = Transport::Unix(take("--unix")?.to_string());
                    Ok(1)
                }
                #[cfg(not(unix))]
                Err(CliError::Usage(
                    "--unix is only available on Unix platforms".into(),
                ))
            }
            "--token" => {
                token = Some(take("--token")?.to_string());
                Ok(1)
            }
            "--realtime" => {
                realtime = true;
                Ok(0)
            }
            "--journal" => {
                journal_path = Some(take("--journal")?.to_string());
                Ok(1)
            }
            "--fsync" => {
                let text = take("--fsync")?;
                fsync = Some(FsyncPolicy::parse(text).ok_or_else(|| {
                    CliError::Usage(format!("unknown fsync policy '{text}' (every|batch|off)"))
                })?);
                Ok(1)
            }
            "--snapshot-every" => {
                let n: u64 = take("--snapshot-every")?.parse().map_err(|_| {
                    CliError::Usage("--snapshot-every expects a positive integer".into())
                })?;
                if n == 0 {
                    return Err(CliError::Usage(
                        "--snapshot-every must be at least 1".into(),
                    ));
                }
                snapshot_every = Some(n);
                Ok(1)
            }
            "--idle-timeout" => {
                idle_timeout = Some(take("--idle-timeout")?.parse().map_err(|_| {
                    CliError::Usage("--idle-timeout expects seconds (0 disables)".into())
                })?);
                Ok(1)
            }
            "--drain-mode" => {
                let text = take("--drain-mode")?;
                drain_mode = DrainMode::parse(text).ok_or_else(|| {
                    CliError::Usage(format!("unknown drain mode '{text}' (restart|checkpoint)"))
                })?;
                Ok(1)
            }
            "--retire" => {
                retire = true;
                Ok(0)
            }
            "--records-out" => {
                records_out = Some(take("--records-out")?.to_string());
                Ok(1)
            }
            other => Err(CliError::Usage(format!(
                "unknown option '{other}' (see `resa serve --help`)"
            ))),
        }
    })?;
    let socket_transport = match &transport {
        Transport::Tcp(_) => true,
        #[cfg(unix)]
        Transport::Unix(_) => true,
        _ => false,
    };
    if token.is_some() && !socket_transport {
        return Err(CliError::Usage(
            "--token requires a socket transport (--listen or --unix)".into(),
        ));
    }
    if realtime && matches!(transport, Transport::Script(_)) {
        return Err(CliError::Usage(
            "--realtime is incompatible with --script (script transcripts are deterministic)"
                .into(),
        ));
    }
    if journal_path.is_none() && (fsync.is_some() || snapshot_every.is_some()) {
        return Err(CliError::Usage(
            "--fsync and --snapshot-every require --journal".into(),
        ));
    }
    if idle_timeout.is_some() && !socket_transport {
        return Err(CliError::Usage(
            "--idle-timeout requires a socket transport (--listen or --unix)".into(),
        ));
    }
    if retire && socket_transport {
        return Err(CliError::Usage(
            "--retire requires a sequential transport (stdin or --script): the \
             concurrent backend publishes whole-history snapshots"
                .into(),
        ));
    }
    if retire && journal_path.is_some() {
        return Err(CliError::Usage(
            "--retire is incompatible with --journal: retired records leave the \
             process, so a recovery checkpoint could not capture the session"
                .into(),
        ));
    }
    if records_out.is_some() && !retire {
        return Err(CliError::Usage("--records-out requires --retire".into()));
    }
    let journal = journal_path.map(|path| JournalOpts {
        path,
        fsync: fsync.unwrap_or_default(),
        snapshot_every: snapshot_every.unwrap_or(1024),
    });
    let idle = match idle_timeout.unwrap_or(600) {
        0 => None,
        secs => Some(Duration::from_secs(secs)),
    };
    let cfg = SessionCfg {
        token,
        realtime: realtime.then(std::time::Instant::now),
    };
    match transport {
        Transport::Script(path) => {
            let script = std::fs::read_to_string(&path).map_err(|e| CliError::Io {
                path: path.clone(),
                message: e.to_string(),
            })?;
            let transcript = match (&journal, retire) {
                (None, false) => {
                    run_script_with_mode(&script, machines, policy, substrate, drain_mode)
                }
                (None, true) => run_script_retiring(
                    &script,
                    machines,
                    policy,
                    substrate,
                    drain_mode,
                    records_out.as_deref(),
                )?,
                (Some(jo), _) => {
                    run_script_journaled(&script, machines, policy, substrate, drain_mode, jo)?
                }
            };
            let mut stdout = transcript.clone();
            if let Some(note) = opts.persist(&transcript)? {
                stdout.push_str(&note);
                stdout.push('\n');
            }
            Ok(Outcome {
                stdout,
                violations: 0,
            })
        }
        Transport::Stdio => {
            let io_err = |e: std::io::Error| CliError::Io {
                path: "<session>".to_string(),
                message: e.to_string(),
            };
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            if retire {
                let sink = FileRecordSink::new(records_out.as_deref())?;
                match substrate {
                    Substrate::Timeline => {
                        let mut svc =
                            ScheduleService::new(policy, AvailabilityTimeline::constant(machines));
                        svc.set_drain_mode(drain_mode);
                        let mut retiring = RetiringService { svc, sink };
                        serve_session(&mut retiring, &cfg, stdin.lock(), stdout.lock())
                            .map_err(io_err)?;
                        retiring.sink.flush();
                    }
                    Substrate::Profile => {
                        let mut svc =
                            ScheduleService::new(policy, ResourceProfile::constant(machines));
                        svc.set_drain_mode(drain_mode);
                        let mut retiring = RetiringService { svc, sink };
                        serve_session(&mut retiring, &cfg, stdin.lock(), stdout.lock())
                            .map_err(io_err)?;
                        retiring.sink.flush();
                    }
                }
                return Ok(Outcome {
                    stdout: String::new(),
                    violations: 0,
                });
            }
            match (substrate, &journal) {
                (Substrate::Timeline, None) => {
                    let mut svc =
                        ScheduleService::new(policy, AvailabilityTimeline::constant(machines));
                    svc.set_drain_mode(drain_mode);
                    serve_session(&mut svc, &cfg, stdin.lock(), stdout.lock()).map_err(io_err)?;
                }
                (Substrate::Profile, None) => {
                    let mut svc = ScheduleService::new(policy, ResourceProfile::constant(machines));
                    svc.set_drain_mode(drain_mode);
                    serve_session(&mut svc, &cfg, stdin.lock(), stdout.lock()).map_err(io_err)?;
                }
                (Substrate::Timeline, Some(jo)) => {
                    let (j, rec) = open_journal(jo, machines, policy)?;
                    let svc = rec.restore_service_with_mode(
                        policy,
                        AvailabilityTimeline::constant(machines),
                        drain_mode,
                    );
                    let mut journaled = JournaledService::new(svc, j);
                    serve_session(&mut journaled, &cfg, stdin.lock(), stdout.lock())
                        .map_err(io_err)?;
                }
                (Substrate::Profile, Some(jo)) => {
                    let (j, rec) = open_journal(jo, machines, policy)?;
                    let svc = rec.restore_service_with_mode(
                        policy,
                        ResourceProfile::constant(machines),
                        drain_mode,
                    );
                    let mut journaled = JournaledService::new(svc, j);
                    serve_session(&mut journaled, &cfg, stdin.lock(), stdout.lock())
                        .map_err(io_err)?;
                }
            }
            Ok(Outcome {
                stdout: String::new(),
                violations: 0,
            })
        }
        Transport::Tcp(addr) => {
            let listener = std::net::TcpListener::bind(&addr).map_err(|e| CliError::Io {
                path: addr.clone(),
                message: e.to_string(),
            })?;
            serve_listener(
                machines,
                policy,
                substrate,
                drain_mode,
                cfg,
                AnyListener::Tcp(listener),
                journal,
                idle,
            )?;
            Ok(Outcome {
                stdout: String::new(),
                violations: 0,
            })
        }
        #[cfg(unix)]
        Transport::Unix(path) => {
            let _ = std::fs::remove_file(&path);
            let listener =
                std::os::unix::net::UnixListener::bind(&path).map_err(|e| CliError::Io {
                    path: path.clone(),
                    message: e.to_string(),
                })?;
            serve_listener(
                machines,
                policy,
                substrate,
                drain_mode,
                cfg,
                AnyListener::Unix(listener),
                journal,
                idle,
            )?;
            Ok(Outcome {
                stdout: String::new(),
                violations: 0,
            })
        }
    }
}

/// A buffered reader / writer pair for one accepted connection, `Send` so
/// the session can move to its own thread.
type BoxedSession = (Box<dyn BufRead + Send>, Box<dyn Write + Send>);

/// The socket listeners behind `--listen` / `--unix`, polled non-blocking
/// so the accept loop can observe the shutdown flag.
enum AnyListener {
    Tcp(std::net::TcpListener),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener),
}

impl AnyListener {
    fn set_nonblocking(&self) -> std::io::Result<()> {
        match self {
            AnyListener::Tcp(l) => l.set_nonblocking(true),
            #[cfg(unix)]
            AnyListener::Unix(l) => l.set_nonblocking(true),
        }
    }

    /// Accept one connection. `idle` becomes the socket's read timeout: a
    /// session that sends nothing for that long is closed with a
    /// structured timeout line instead of pinning its thread forever.
    fn accept(&self, idle: Option<Duration>) -> std::io::Result<BoxedSession> {
        match self {
            AnyListener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                // Accepted sockets must block normally regardless of what
                // the platform inherits from the listener.
                stream.set_nonblocking(false)?;
                stream.set_read_timeout(idle)?;
                let reader = std::io::BufReader::new(stream.try_clone()?);
                Ok((Box::new(reader), Box::new(stream)))
            }
            #[cfg(unix)]
            AnyListener::Unix(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nonblocking(false)?;
                stream.set_read_timeout(idle)?;
                let reader = std::io::BufReader::new(stream.try_clone()?);
                Ok((Box::new(reader), Box::new(stream)))
            }
        }
    }
}

/// Instantiate the resident service on the chosen substrate — recovering
/// from and journaling into `journal` when given — and serve the listener
/// concurrently until a session issues `shutdown`.
#[allow(clippy::too_many_arguments)]
fn serve_listener(
    machines: u32,
    policy: ReferencePolicy,
    substrate: Substrate,
    mode: DrainMode,
    cfg: SessionCfg,
    listener: AnyListener,
    journal: Option<JournalOpts>,
    idle: Option<Duration>,
) -> Result<(), CliError> {
    match substrate {
        Substrate::Timeline => {
            let front = match &journal {
                Some(jo) => {
                    let (j, rec) = open_journal(jo, machines, policy)?;
                    let svc = rec.restore_service_with_mode(
                        policy,
                        AvailabilityTimeline::constant(machines),
                        mode,
                    );
                    ConcurrentService::with_journal(svc, j)
                }
                None => {
                    let mut svc =
                        ScheduleService::new(policy, AvailabilityTimeline::constant(machines));
                    svc.set_drain_mode(mode);
                    ConcurrentService::new(svc)
                }
            };
            serve_concurrent(front, cfg, listener, idle)
        }
        Substrate::Profile => {
            let front = match &journal {
                Some(jo) => {
                    let (j, rec) = open_journal(jo, machines, policy)?;
                    let svc = rec.restore_service_with_mode(
                        policy,
                        ResourceProfile::constant(machines),
                        mode,
                    );
                    ConcurrentService::with_journal(svc, j)
                }
                None => {
                    let mut svc = ScheduleService::new(policy, ResourceProfile::constant(machines));
                    svc.set_drain_mode(mode);
                    ConcurrentService::new(svc)
                }
            };
            serve_concurrent(front, cfg, listener, idle)
        }
    }
}

/// Accept connections concurrently against one shared [`ConcurrentService`],
/// one thread per session. A client that drops mid-session (broken pipe,
/// connection reset) ends only its own session; a failing `accept` (e.g. fd
/// exhaustion) backs off briefly instead of spinning hot. Returns once any
/// session issues `shutdown`: the listener stops accepting, the writer
/// thread is joined, and remaining sessions die with the process.
fn serve_concurrent<C>(
    service: ConcurrentService<C>,
    cfg: SessionCfg,
    listener: AnyListener,
    idle: Option<Duration>,
) -> Result<(), CliError>
where
    C: Snapshotable + Send + 'static,
{
    listener.set_nonblocking().map_err(|e| CliError::Io {
        path: "<listener>".to_string(),
        message: e.to_string(),
    })?;
    let stop = Arc::new(AtomicBool::new(false));
    let cfg = Arc::new(cfg);
    while !stop.load(Ordering::SeqCst) {
        match listener.accept(idle) {
            Ok((mut reader, mut writer)) => {
                let mut client = service.client();
                let stop = Arc::clone(&stop);
                let cfg = Arc::clone(&cfg);
                std::thread::spawn(move || {
                    // Err means the client dropped mid-session: that ends
                    // its own session only.
                    if let Ok(true) = serve_session(&mut client, &cfg, &mut reader, &mut writer) {
                        stop.store(true, Ordering::SeqCst);
                    }
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(50)),
        }
    }
    // Dropping the front stops and joins the single writer; the final state
    // dies with the process, like the sequential transports.
    drop(service);
    Ok(())
}
