//! The previous-generation simulation path, kept verbatim.
//!
//! [`simulate_reference`] reproduces the engine and policies as they were
//! before the zero-alloc rewrite: the event loop clones the waiting queue
//! into a fresh `Vec<Job>` at every decision point, removes started jobs
//! with `O(n)` `Vec::remove`, batches same-instant events through a
//! temporary buffer, and the policies clone the whole availability substrate
//! to probe tentative starts (EASY additionally re-derives the head's shadow
//! with a full `earliest_fit` per candidate).
//!
//! It exists for two reasons:
//!
//! * **equivalence oracle** — the property tests in this crate assert that
//!   the optimized engine/policies produce identical schedules;
//! * **bench baseline** — `resa-bench`'s `decision_points` bench measures
//!   the end-to-end speedup of the optimized path against this one.

use crate::engine::SimResult;
use crate::event::{Event, EventQueue};
use crate::metrics::SimMetrics;
use resa_core::prelude::*;
use std::collections::HashSet;

/// Which classical policy to replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReferencePolicy {
    /// Strict FCFS.
    Fcfs,
    /// EASY backfilling (probing formulation).
    Easy,
    /// Greedy LSRC-like.
    Greedy,
}

impl ReferencePolicy {
    /// Display name, matching the optimized policies' names.
    pub fn name(self) -> &'static str {
        match self {
            ReferencePolicy::Fcfs => "FCFS",
            ReferencePolicy::Easy => "EASY",
            ReferencePolicy::Greedy => "greedy-LSRC",
        }
    }
}

/// One decision of the clone-based policies: which waiting jobs start `now`.
fn decide(
    policy: ReferencePolicy,
    now: Time,
    queue: &[Job],
    profile: &AvailabilityTimeline,
) -> Vec<JobId> {
    let mut profile = profile.clone();
    let mut started = Vec::new();
    match policy {
        ReferencePolicy::Fcfs => {
            for job in queue {
                if profile.min_capacity_in(now, job.duration) >= job.width {
                    profile
                        .reserve(now, job.duration, job.width)
                        .expect("capacity just checked");
                    started.push(job.id);
                } else {
                    break;
                }
            }
        }
        ReferencePolicy::Greedy => {
            for job in queue {
                if profile.min_capacity_in(now, job.duration) >= job.width {
                    profile
                        .reserve(now, job.duration, job.width)
                        .expect("capacity just checked");
                    started.push(job.id);
                }
            }
        }
        ReferencePolicy::Easy => {
            let mut idx = 0;
            while idx < queue.len() {
                let job = &queue[idx];
                if profile.min_capacity_in(now, job.duration) >= job.width {
                    profile
                        .reserve(now, job.duration, job.width)
                        .expect("capacity just checked");
                    started.push(job.id);
                    idx += 1;
                } else {
                    break;
                }
            }
            if idx < queue.len() {
                let head = &queue[idx];
                let shadow = profile
                    .earliest_fit(head.width, head.duration, now)
                    .expect("feasible instances always admit a fit");
                for job in &queue[idx + 1..] {
                    if profile.min_capacity_in(now, job.duration) >= job.width {
                        profile
                            .reserve(now, job.duration, job.width)
                            .expect("capacity just checked");
                        let new_shadow = profile
                            .earliest_fit(head.width, head.duration, now)
                            .expect("feasible instances always admit a fit");
                        if new_shadow <= shadow {
                            started.push(job.id);
                        } else {
                            profile
                                .release(now, job.duration, job.width)
                                .expect("undoing our own reservation");
                        }
                    }
                }
            }
        }
    }
    started
}

/// Run the previous-generation event loop to completion under `policy`.
pub fn simulate_reference(instance: &ResaInstance, policy: ReferencePolicy) -> SimResult {
    let mut events = EventQueue::new();
    for job in instance.jobs() {
        events.push(job.release, Event::JobArrival(job.id));
    }
    let reservation_profile = instance.profile();
    for &(t, _) in reservation_profile.steps() {
        if t > Time::ZERO {
            events.push(t, Event::AvailabilityChange);
        }
    }
    let mut profile = AvailabilityTimeline::from(&reservation_profile);
    let mut waiting: Vec<JobId> = Vec::new(); // arrival order
    let mut arrived: HashSet<JobId> = HashSet::new();
    let mut schedule = Schedule::new();
    let mut decisions = 0u64;

    while let Some(first) = events.pop() {
        let now = first.at;
        // Drain every event at this instant through a temporary batch.
        let mut batch = vec![first];
        while events.peek_time() == Some(now) {
            batch.push(events.pop().expect("peeked"));
        }
        let mut new_arrivals: Vec<JobId> = batch
            .iter()
            .filter_map(|te| match te.event {
                Event::JobArrival(id) => Some(id),
                _ => None,
            })
            .collect();
        new_arrivals.sort();
        for id in new_arrivals {
            if arrived.insert(id) {
                waiting.push(id);
            }
        }
        if waiting.is_empty() {
            continue;
        }
        decisions += 1;
        let queue: Vec<Job> = waiting
            .iter()
            .map(|&id| *instance.job(id).expect("waiting jobs exist"))
            .collect();
        let to_start = decide(policy, now, &queue, &profile);
        for id in to_start {
            let Some(pos) = waiting.iter().position(|&w| w == id) else {
                continue;
            };
            let job = instance.job(id).expect("waiting jobs exist");
            if profile.min_capacity_in(now, job.duration) < job.width {
                continue;
            }
            profile
                .reserve(now, job.duration, job.width)
                .expect("capacity just checked");
            schedule.place(id, now);
            events.push(now + job.duration, Event::JobCompletion(id));
            waiting.remove(pos);
        }
    }
    debug_assert_eq!(schedule.len(), instance.n_jobs(), "every job must run");
    let metrics = SimMetrics::from_schedule(instance, &schedule);
    SimResult {
        schedule,
        metrics,
        decisions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use resa_core::instance::ResaInstanceBuilder;

    #[test]
    fn reference_matches_optimized_on_fixture() {
        let inst = ResaInstanceBuilder::new(4)
            .job(3, 4u64)
            .job_released_at(4, 2u64, 1u64)
            .job_released_at(1, 3u64, 1u64)
            .job_released_at(2, 2u64, 6u64)
            .reservation(2, 3u64, 8u64)
            .build()
            .unwrap();
        let sim = Simulator::new(inst.clone());
        for (kind, res) in [
            (ReferencePolicy::Fcfs, sim.run(&FcfsPolicy)),
            (ReferencePolicy::Easy, sim.run(&EasyPolicy)),
            (ReferencePolicy::Greedy, sim.run(&GreedyPolicy)),
        ] {
            let reference = simulate_reference(&inst, kind);
            assert_eq!(reference.schedule, res.schedule, "{}", kind.name());
            assert_eq!(reference.decisions, res.decisions, "{}", kind.name());
        }
    }
}
