//! Multi-tenant front for [`ScheduleService`]: one writer, snapshot readers.
//!
//! [`ScheduleService`] is inherently single-threaded — every request mutates
//! (or speculates against) one live substrate. A service shared by many
//! sessions therefore runs the classic read-mostly architecture:
//!
//! * **One writer thread** owns the `ScheduleService`. Mutating ops
//!   (`submit` / `reserve` / `cancel` / `advance` / `drain`) funnel through
//!   an [`mpsc`] channel; the writer dequeues them in **batches** (up to
//!   [`BATCH_MAX`]), applies them in arrival order, and then *publishes* an
//!   immutable [`ServiceSnapshot`] — stats, the frozen
//!   [`TimelineSnapshot`] of the availability function, and the schedule so
//!   far — by swapping an `Arc` behind an [`RwLock`] (held only for the
//!   duration of a pointer swap or clone, never across any computation).
//! * **Readers never queue behind writes.** `query` / `stats` / the full
//!   snapshot run on the calling thread against the latest published
//!   `Arc<ServiceSnapshot>`; the only shared access is cloning the `Arc`
//!   out of the slot. Read throughput scales with cores — pinned by the
//!   concurrent-clients benchmark in `resa-bench`.
//!
//! # Consistency model
//!
//! The writer publishes the post-batch snapshot **before** delivering the
//! batch's replies. A client that has received the reply to its own write
//! therefore always observes a published generation that *includes* that
//! write — read-your-writes per session, which is exactly what makes a
//! single-session conversation over [`ConcurrentService`] indistinguishable
//! from one over a private sequential [`ScheduleService`] (the golden CLI
//! transcripts rely on this). Reads may lag concurrent *other-session*
//! writes by at most one batch; every answer is stamped with the
//! [`ServiceSnapshot::generation`] it was computed from, so staleness is
//! observable, never silent.
//!
//! # Serial equivalence
//!
//! The dequeue order of the writer defines a total *serial order* over all
//! sessions' ops. [`ConcurrentService::with_recording`] keeps that order as
//! a log of [`AppliedOp`]s; replaying the log on a fresh sequential
//! [`ScheduleService`] must reproduce the concurrent service's final state
//! bit for bit — the oracle behind the multi-client stress tests and the
//! serial-equivalence proptests (`tests/concurrent_stress.rs`).

use crate::journal::OpJournal;
use crate::metrics::SimMetrics;
use crate::reference::ReferencePolicy;
use crate::service::{
    AdmissionPolicy, DeadlineOutcome, Effects, ScheduleService, ServiceError, ServiceStats,
};
use crate::trace::{JobRecord, RunTrace};
use resa_core::capacity::Speculate;
use resa_core::prelude::*;
use resa_core::snapshot::Snapshotable;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{mpsc, Arc, RwLock};
use std::thread::JoinHandle;

/// Most ops the writer applies between two snapshot publications. A larger
/// batch amortizes the `O(jobs + B)` publication cost under write bursts; a
/// smaller one tightens reader staleness. 64 keeps worst-case staleness at
/// one sub-millisecond batch while collapsing publication cost under load.
pub const BATCH_MAX: usize = 64;

/// One mutating request, as carried through the writer channel and recorded
/// in the serial log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOp {
    /// [`ScheduleService::submit`].
    Submit {
        /// Processors requested.
        width: u32,
        /// Run time.
        duration: Dur,
        /// Release date (`None` = on arrival).
        release: Option<Time>,
    },
    /// [`ScheduleService::reserve`].
    Reserve {
        /// Processors withdrawn.
        width: u32,
        /// Window length.
        duration: Dur,
        /// Window start.
        start: Time,
    },
    /// [`ScheduleService::cancel`].
    Cancel {
        /// Reservation id.
        id: usize,
    },
    /// [`ScheduleService::advance`].
    Advance {
        /// Target instant.
        to: Time,
    },
    /// [`ScheduleService::advance_clamped`].
    AdvanceClamped {
        /// Target instant (clamped to `now`).
        to: Time,
    },
    /// [`ScheduleService::drain`].
    Drain,
    /// [`ScheduleService::inject`].
    Inject {
        /// Machines withdrawn by the failure/maintenance window.
        width: u32,
        /// Window length.
        duration: Dur,
        /// Window start.
        start: Time,
    },
    /// [`ScheduleService::revoke`].
    Revoke {
        /// Drain id.
        id: usize,
    },
    /// [`ScheduleService::submit_deadline`].
    SubmitDeadline {
        /// Processors requested.
        width: u32,
        /// Run time.
        duration: Dur,
        /// Release date (`None` = on arrival).
        release: Option<Time>,
        /// Due date the completion must not exceed.
        deadline: Time,
        /// What to do when the speculative bound misses the due date.
        admission: AdmissionPolicy,
    },
    /// [`ScheduleService::submit_moldable`].
    SubmitMoldable {
        /// Admissible width menu.
        widths: Vec<u32>,
        /// Total work (processor×ticks).
        area: u64,
    },
}

/// One entry of the serial log: which session issued which op, in the order
/// the writer applied them. Replaying a log through a sequential
/// [`ScheduleService`] reproduces the concurrent run (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedOp {
    /// The issuing session (see [`ServiceClient::session`]).
    pub session: u64,
    /// The op, exactly as applied.
    pub op: WriteOp,
}

impl AppliedOp {
    /// Apply this op to a sequential service, discarding the outcome. The
    /// serial-equivalence oracle replays a recorded log with this;
    /// rejected ops leave no trace on either side, so outcomes need no
    /// reconciliation — final states are compared instead.
    pub fn replay<C: CapacityQuery + Speculate>(&self, svc: &mut ScheduleService<C>) {
        let _ = apply(svc, &self.op);
    }
}

/// The payload of a successful write, mirroring the sequential return
/// shapes. `Effects` are owned clones — the reused buffer of the writer's
/// service never crosses the channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Applied {
    /// A submitted job: its id plus the starts/completions it triggered.
    Job {
        /// The new job's id.
        id: JobId,
        /// What the arrival decision changed.
        effects: Effects,
    },
    /// An accepted reservation: its id plus triggered effects.
    Reservation {
        /// The new reservation's id.
        id: usize,
        /// What the overlay change triggered.
        effects: Effects,
    },
    /// Effects only (cancel / revoke / advance / drain).
    Effects(Effects),
    /// An injected drain: its id, the jobs it preempted, and the effects of
    /// the decision the capacity change triggered.
    Drained {
        /// The new drain's id.
        id: usize,
        /// Victims killed-and-requeued, in re-queue order.
        preempted: Vec<JobId>,
        /// What the overlay change triggered.
        effects: Effects,
    },
    /// A resolved deadline submission: the job id and how admission landed.
    Deadline {
        /// The new job's id.
        id: JobId,
        /// Committed placement or boosted acceptance.
        outcome: DeadlineOutcome,
        /// What the admission triggered.
        effects: Effects,
    },
    /// A concretized moldable submission: the job id and the chosen shape.
    Moldable {
        /// The new job's id.
        id: JobId,
        /// The width/duration/placement [`best_width`] settled on.
        choice: WidthChoice,
        /// What the arrival decision changed.
        effects: Effects,
    },
}

/// The writer's answer to one op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteReply {
    /// The op's outcome, identical to what the sequential service would
    /// have returned at the same point of the serial order.
    pub result: Result<Applied, ServiceError>,
    /// Virtual time after the op was applied.
    pub now: Time,
    /// The publication generation covering this op: the snapshot slot held
    /// a generation `>=` this before the reply was sent (read-your-writes).
    pub generation: u64,
}

/// An immutable view of the whole service, published by the writer at every
/// batch boundary and read lock-free by any number of threads.
#[derive(Debug, Clone)]
pub struct ServiceSnapshot {
    /// Monotone publication counter; generation 0 is the pre-write state.
    pub generation: u64,
    /// The policy the service decides with.
    pub policy: ReferencePolicy,
    /// Aggregate counters at publication time.
    pub stats: ServiceStats,
    /// The frozen availability function, stamped with the same generation.
    pub timeline: TimelineSnapshot,
    /// The session so far as an off-line instance (jobs + effective
    /// overlay), for record/metric computation on the reader's thread.
    pub instance: ResaInstance,
    /// Every placement decided so far, in decision order.
    pub schedule: Schedule,
}

impl ServiceSnapshot {
    fn capture<C>(svc: &ScheduleService<C>, generation: u64) -> Self
    where
        C: Snapshotable,
    {
        ServiceSnapshot {
            generation,
            policy: svc.policy(),
            stats: svc.stats(),
            timeline: svc.freeze_timeline(generation),
            instance: svc.to_instance(),
            schedule: svc.schedule().clone(),
        }
    }

    /// The speculative earliest-fit probe of [`ScheduleService::query`],
    /// answered from the frozen availability function: the earliest start a
    /// `width × duration` job would get, as of this snapshot's generation.
    /// Same validation, same clamping of `not_before` to the (snapshot)
    /// current time, same answer as the live probe at the generation the
    /// snapshot was frozen from.
    pub fn query(
        &self,
        width: u32,
        duration: Dur,
        not_before: Option<Time>,
    ) -> Result<Option<Time>, ServiceError> {
        let machines = self.stats.machines;
        if width == 0 || width > machines {
            return Err(ServiceError::BadWidth { width, machines });
        }
        if duration.is_zero() {
            return Err(ServiceError::ZeroDuration);
        }
        let from = not_before.unwrap_or(self.stats.now).max(self.stats.now);
        Ok(self.timeline.earliest_fit(width, duration, from))
    }

    /// Per-job lifecycle records plus run metrics — the shapes
    /// [`ScheduleService::snapshot`] returns, computed on the caller's
    /// thread from the frozen instance and schedule.
    pub fn records(&self) -> (Vec<JobRecord>, SimMetrics) {
        let trace = RunTrace::from_schedule(&self.instance, &self.schedule);
        let metrics = SimMetrics::from_schedule(&self.instance, &self.schedule);
        (trace.records().to_vec(), metrics)
    }
}

enum Request {
    Op {
        session: u64,
        op: WriteOp,
        reply: Sender<WriteReply>,
    },
    Stop,
}

/// Shared slot the writer publishes into; the lock guards a pointer swap
/// only, never any computation.
type Published = Arc<RwLock<Arc<ServiceSnapshot>>>;

/// The concurrent front: spawns the writer thread at construction, hands
/// out [`ServiceClient`]s, and returns the final sequential state (plus the
/// serial log, if recording) at [`ConcurrentService::shutdown`].
pub struct ConcurrentService<C>
where
    C: Snapshotable + Send + 'static,
{
    tx: Sender<Request>,
    published: Published,
    writer: Option<JoinHandle<(ScheduleService<C>, Vec<AppliedOp>)>>,
    sessions: AtomicU64,
}

impl<C> ConcurrentService<C>
where
    C: Snapshotable + Send + 'static,
{
    /// Wrap `svc` and start the writer thread. The pre-write state is
    /// published immediately as generation 0, so readers are never without
    /// a snapshot.
    pub fn new(svc: ScheduleService<C>) -> Self {
        Self::start(svc, false, None)
    }

    /// Like [`ConcurrentService::new`], but additionally record every
    /// applied op in dequeue order — the serial log handed back by
    /// [`ConcurrentService::shutdown`] for the equivalence oracle. The log
    /// grows without bound; production daemons use [`ConcurrentService::new`].
    pub fn with_recording(svc: ScheduleService<C>) -> Self {
        Self::start(svc, true, None)
    }

    /// Like [`ConcurrentService::new`], but write-ahead journal every
    /// applied op into `journal` (see [`crate::journal`]): each op is
    /// journaled *before* it is applied, the batch is synced per the
    /// journal's [`crate::journal::FsyncPolicy`] *before* the post-batch
    /// snapshot publishes and replies are delivered, and compaction runs at
    /// batch boundaries. An op whose journal append fails is **not**
    /// applied; its reply carries [`ServiceError::Journal`]. Pass a
    /// service rebuilt by [`crate::journal::Recovered::restore_service`]
    /// to resume a crashed session.
    pub fn with_journal(svc: ScheduleService<C>, journal: OpJournal) -> Self {
        Self::start(svc, false, Some(journal))
    }

    fn start(svc: ScheduleService<C>, record: bool, journal: Option<OpJournal>) -> Self {
        let published: Published =
            Arc::new(RwLock::new(Arc::new(ServiceSnapshot::capture(&svc, 0))));
        let (tx, rx) = mpsc::channel();
        let slot = Arc::clone(&published);
        let writer = std::thread::spawn(move || writer_loop(svc, rx, slot, record, journal));
        ConcurrentService {
            tx,
            published,
            writer: Some(writer),
            sessions: AtomicU64::new(0),
        }
    }

    /// Open a new session: a handle that submits writes to the writer
    /// thread and answers reads from the latest published snapshot. Clients
    /// are independent (`Send`); give each session thread its own.
    pub fn client(&self) -> ServiceClient {
        let session = self.sessions.fetch_add(1, Ordering::Relaxed);
        ServiceClient {
            session,
            tx: self.tx.clone(),
            published: Arc::clone(&self.published),
        }
    }

    /// The latest published snapshot (an `Arc` clone; never blocks on the
    /// writer).
    pub fn latest(&self) -> Arc<ServiceSnapshot> {
        Arc::clone(&self.published.read().expect("publish slot poisoned"))
    }

    /// Stop the writer and hand back the final sequential service plus the
    /// serial log (empty unless constructed with
    /// [`ConcurrentService::with_recording`]). Ops still queued behind the
    /// stop request are answered with [`ServiceError::ServiceStopped`];
    /// clients sending afterwards get the same error from the closed
    /// channel.
    pub fn shutdown(mut self) -> (ScheduleService<C>, Vec<AppliedOp>) {
        let _ = self.tx.send(Request::Stop);
        let writer = self.writer.take().expect("writer taken only here");
        writer.join().expect("writer thread panicked")
    }
}

impl<C> Drop for ConcurrentService<C>
where
    C: Snapshotable + Send + 'static,
{
    fn drop(&mut self) {
        if let Some(writer) = self.writer.take() {
            let _ = self.tx.send(Request::Stop);
            let _ = writer.join();
        }
    }
}

/// One session's handle onto a [`ConcurrentService`]: the mutating API of
/// [`ScheduleService`] (round-tripped through the writer, owned `Effects`
/// back) plus lock-free reads from the latest published snapshot.
pub struct ServiceClient {
    session: u64,
    tx: Sender<Request>,
    published: Published,
}

impl ServiceClient {
    /// The dense session id this client tags its ops with in the serial
    /// log.
    pub fn session(&self) -> u64 {
        self.session
    }

    fn roundtrip(&self, op: WriteOp) -> Result<WriteReply, ServiceError> {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.tx
            .send(Request::Op {
                session: self.session,
                op,
                reply: reply_tx,
            })
            .map_err(|_| ServiceError::ServiceStopped)?;
        reply_rx.recv().map_err(|_| ServiceError::ServiceStopped)
    }

    /// [`ScheduleService::submit`], applied in the writer's serial order.
    pub fn submit(
        &self,
        width: u32,
        duration: Dur,
        release: Option<Time>,
    ) -> Result<(JobId, Effects), ServiceError> {
        let reply = self.roundtrip(WriteOp::Submit {
            width,
            duration,
            release,
        })?;
        match reply.result? {
            Applied::Job { id, effects } => Ok((id, effects)),
            _ => unreachable!("writer answered submit with a non-job payload"),
        }
    }

    /// [`ScheduleService::reserve`], applied in the writer's serial order.
    pub fn reserve(
        &self,
        width: u32,
        duration: Dur,
        start: Time,
    ) -> Result<(usize, Effects), ServiceError> {
        let reply = self.roundtrip(WriteOp::Reserve {
            width,
            duration,
            start,
        })?;
        match reply.result? {
            Applied::Reservation { id, effects } => Ok((id, effects)),
            _ => unreachable!("writer answered reserve with a non-reservation payload"),
        }
    }

    /// [`ScheduleService::cancel`], applied in the writer's serial order.
    pub fn cancel(&self, id: usize) -> Result<Effects, ServiceError> {
        match self.roundtrip(WriteOp::Cancel { id })?.result? {
            Applied::Effects(fx) => Ok(fx),
            _ => unreachable!("writer answered cancel with an id payload"),
        }
    }

    /// [`ScheduleService::advance`]; returns the new virtual time with the
    /// effects (the caller cannot peek at the writer's `now`).
    pub fn advance(&self, to: Time) -> Result<(Time, Effects), ServiceError> {
        let reply = self.roundtrip(WriteOp::Advance { to })?;
        let now = reply.now;
        match reply.result? {
            Applied::Effects(fx) => Ok((now, fx)),
            _ => unreachable!("writer answered advance with an id payload"),
        }
    }

    /// [`ScheduleService::advance_clamped`]; never `InThePast`, but still
    /// fallible with [`ServiceError::ServiceStopped`].
    pub fn advance_clamped(&self, to: Time) -> Result<(Time, Effects), ServiceError> {
        let reply = self.roundtrip(WriteOp::AdvanceClamped { to })?;
        let now = reply.now;
        match reply.result? {
            Applied::Effects(fx) => Ok((now, fx)),
            _ => unreachable!("writer answered advance with an id payload"),
        }
    }

    /// [`ScheduleService::inject`], through the writer; returns the drain
    /// id, the preempted job ids and the triggered effects.
    pub fn inject(
        &self,
        width: u32,
        duration: Dur,
        start: Time,
    ) -> Result<(usize, Vec<JobId>, Effects), ServiceError> {
        let reply = self.roundtrip(WriteOp::Inject {
            width,
            duration,
            start,
        })?;
        match reply.result? {
            Applied::Drained {
                id,
                preempted,
                effects,
            } => Ok((id, preempted, effects)),
            other => unreachable!("inject answered with {other:?}"),
        }
    }

    /// [`ScheduleService::revoke`], through the writer.
    pub fn revoke(&self, id: usize) -> Result<Effects, ServiceError> {
        match self.roundtrip(WriteOp::Revoke { id })?.result? {
            Applied::Effects(fx) => Ok(fx),
            other => unreachable!("revoke answered with {other:?}"),
        }
    }

    /// [`ScheduleService::submit_deadline`], through the writer.
    pub fn submit_deadline(
        &self,
        width: u32,
        duration: Dur,
        release: Option<Time>,
        deadline: Time,
        admission: AdmissionPolicy,
    ) -> Result<(JobId, DeadlineOutcome, Effects), ServiceError> {
        let reply = self.roundtrip(WriteOp::SubmitDeadline {
            width,
            duration,
            release,
            deadline,
            admission,
        })?;
        match reply.result? {
            Applied::Deadline {
                id,
                outcome,
                effects,
            } => Ok((id, outcome, effects)),
            other => unreachable!("submit_deadline answered with {other:?}"),
        }
    }

    /// [`ScheduleService::submit_moldable`], through the writer.
    pub fn submit_moldable(
        &self,
        widths: Vec<u32>,
        area: u64,
    ) -> Result<(JobId, WidthChoice, Effects), ServiceError> {
        let reply = self.roundtrip(WriteOp::SubmitMoldable { widths, area })?;
        match reply.result? {
            Applied::Moldable {
                id,
                choice,
                effects,
            } => Ok((id, choice, effects)),
            other => unreachable!("submit_moldable answered with {other:?}"),
        }
    }

    /// [`ScheduleService::drain`]; returns the final virtual time with the
    /// effects.
    pub fn drain(&self) -> Result<(Time, Effects), ServiceError> {
        let reply = self.roundtrip(WriteOp::Drain)?;
        let now = reply.now;
        match reply.result? {
            Applied::Effects(fx) => Ok((now, fx)),
            _ => unreachable!("writer answered drain with an id payload"),
        }
    }

    /// The latest published snapshot (an `Arc` clone; never blocks on the
    /// writer). Guaranteed to include every write this client has received
    /// a reply for.
    pub fn snapshot(&self) -> Arc<ServiceSnapshot> {
        Arc::clone(&self.published.read().expect("publish slot poisoned"))
    }

    /// [`ScheduleService::query`] against the latest snapshot — runs
    /// entirely on this thread, no writer involvement.
    pub fn query(
        &self,
        width: u32,
        duration: Dur,
        not_before: Option<Time>,
    ) -> Result<Option<Time>, ServiceError> {
        self.snapshot().query(width, duration, not_before)
    }

    /// [`ScheduleService::stats`] as of the latest snapshot.
    pub fn stats(&self) -> ServiceStats {
        self.snapshot().stats.clone()
    }

    /// [`ScheduleService::snapshot`] (records + metrics) as of the latest
    /// snapshot, computed on this thread.
    pub fn records(&self) -> (Vec<JobRecord>, SimMetrics) {
        self.snapshot().records()
    }
}

fn apply<C: CapacityQuery + Speculate>(
    svc: &mut ScheduleService<C>,
    op: &WriteOp,
) -> Result<Applied, ServiceError> {
    match *op {
        WriteOp::Submit {
            width,
            duration,
            release,
        } => svc
            .submit(width, duration, release)
            .map(|(id, fx)| Applied::Job {
                id,
                effects: fx.clone(),
            }),
        WriteOp::Reserve {
            width,
            duration,
            start,
        } => svc
            .reserve(width, duration, start)
            .map(|(id, fx)| Applied::Reservation {
                id,
                effects: fx.clone(),
            }),
        WriteOp::Cancel { id } => svc.cancel(id).map(|fx| Applied::Effects(fx.clone())),
        WriteOp::Advance { to } => svc.advance(to).map(|fx| Applied::Effects(fx.clone())),
        WriteOp::AdvanceClamped { to } => Ok(Applied::Effects(svc.advance_clamped(to).clone())),
        WriteOp::Drain => Ok(Applied::Effects(svc.drain().clone())),
        WriteOp::Inject {
            width,
            duration,
            start,
        } => {
            let res = svc
                .inject(width, duration, start)
                .map(|(id, fx)| (id, fx.clone()));
            res.map(|(id, effects)| Applied::Drained {
                id,
                preempted: svc.last_preempted().to_vec(),
                effects,
            })
        }
        WriteOp::Revoke { id } => svc.revoke(id).map(|fx| Applied::Effects(fx.clone())),
        WriteOp::SubmitDeadline {
            width,
            duration,
            release,
            deadline,
            admission,
        } => svc
            .submit_deadline(width, duration, release, deadline, admission)
            .map(|(id, outcome, fx)| Applied::Deadline {
                id,
                outcome,
                effects: fx.clone(),
            }),
        WriteOp::SubmitMoldable { ref widths, area } => {
            svc.submit_moldable(widths, area)
                .map(|(id, choice, fx)| Applied::Moldable {
                    id,
                    choice,
                    effects: fx.clone(),
                })
        }
    }
}

/// The single-writer loop: batch-dequeue, apply in order, publish, reply —
/// in exactly that order, so a delivered reply proves the snapshot slot
/// already covers the write.
fn writer_loop<C>(
    mut svc: ScheduleService<C>,
    rx: Receiver<Request>,
    slot: Published,
    record: bool,
    mut journal: Option<OpJournal>,
) -> (ScheduleService<C>, Vec<AppliedOp>)
where
    C: Snapshotable + Send + 'static,
{
    let mut generation = 0u64;
    let mut log: Vec<AppliedOp> = Vec::new();
    let mut batch: Vec<(u64, WriteOp, Sender<WriteReply>)> = Vec::with_capacity(BATCH_MAX);
    let mut replies: Vec<(Sender<WriteReply>, Result<Applied, ServiceError>, Time)> =
        Vec::with_capacity(BATCH_MAX);
    'serve: loop {
        batch.clear();
        let mut stopping = false;
        match rx.recv() {
            Ok(Request::Op { session, op, reply }) => batch.push((session, op, reply)),
            Ok(Request::Stop) => stopping = true,
            // Every handle dropped without an explicit stop: we are done.
            Err(_) => break 'serve,
        }
        while !stopping && batch.len() < BATCH_MAX {
            match rx.try_recv() {
                Ok(Request::Op { session, op, reply }) => batch.push((session, op, reply)),
                Ok(Request::Stop) => stopping = true,
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }
        if !batch.is_empty() {
            replies.clear();
            for (session, op, reply) in batch.drain(..) {
                // Write-ahead: the record must be journaled before the op
                // mutates the service; an op that cannot be made durable
                // is refused rather than applied volatile.
                let journaled = match &mut journal {
                    Some(j) => j
                        .append_op(&AppliedOp {
                            session,
                            op: op.clone(),
                        })
                        .map_err(|e| ServiceError::Journal {
                            message: e.to_string(),
                        }),
                    None => Ok(()),
                };
                let result = match journaled {
                    Ok(()) => apply(&mut svc, &op),
                    Err(e) => Err(e),
                };
                if record {
                    log.push(AppliedOp { session, op });
                }
                replies.push((reply, result, svc.now()));
            }
            if let Some(j) = &mut journal {
                // Durability point: acknowledged ops are on disk (per the
                // fsync policy) before the snapshot publishes and any
                // reply is delivered.
                if let Err(e) = j.batch_sync() {
                    eprintln!("resa journal: batch sync failed: {e}");
                }
                if let Err(e) = j.maybe_snapshot(|| svc.state()) {
                    eprintln!("resa journal: compaction failed: {e}");
                }
            }
            generation += 1;
            let snap = Arc::new(ServiceSnapshot::capture(&svc, generation));
            *slot.write().expect("publish slot poisoned") = snap;
            for (reply, result, now) in replies.drain(..) {
                // A client that gave up waiting is not an error.
                let _ = reply.send(WriteReply {
                    result,
                    now,
                    generation,
                });
            }
        }
        if stopping {
            // Answer everything still queued so no client blocks forever,
            // then exit; later sends fail at the (closed) channel.
            while let Ok(req) = rx.try_recv() {
                if let Request::Op { reply, .. } = req {
                    let _ = reply.send(WriteReply {
                        result: Err(ServiceError::ServiceStopped),
                        now: svc.now(),
                        generation,
                    });
                }
            }
            break 'serve;
        }
    }
    (svc, log)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn concurrent(m: u32, policy: ReferencePolicy) -> ConcurrentService<AvailabilityTimeline> {
        ConcurrentService::with_recording(ScheduleService::new(
            policy,
            AvailabilityTimeline::constant(m),
        ))
    }

    #[test]
    fn single_session_matches_the_sequential_service() {
        let svc = concurrent(4, ReferencePolicy::Easy);
        let client = svc.client();
        let mut seq =
            ScheduleService::new(ReferencePolicy::Easy, AvailabilityTimeline::constant(4));

        let (rid, rfx) = client.reserve(2, Dur(6), Time(4)).unwrap();
        let (srid, sfx) = seq.reserve(2, Dur(6), Time(4)).unwrap();
        assert_eq!((rid, &rfx), (srid, sfx));

        let (jid, jfx) = client.submit(3, Dur(5), None).unwrap();
        let (sjid, sfx) = seq.submit(3, Dur(5), None).unwrap();
        assert_eq!((jid, &jfx), (sjid, sfx));

        // Read-your-writes: the snapshot already covers the submit.
        assert_eq!(client.query(2, Dur(3), None), seq.query(2, Dur(3), None));
        assert_eq!(client.stats(), seq.stats());

        let (now, afx) = client.advance(Time(9)).unwrap();
        let sfx = seq.advance(Time(9)).unwrap();
        assert_eq!(&afx, sfx);
        assert_eq!(now, seq.now());

        let (_, dfx) = client.drain().unwrap();
        let sfx = seq.drain();
        assert_eq!(&dfx, sfx);
        assert_eq!(client.stats(), seq.stats());
        assert_eq!(client.records(), seq.snapshot());

        let (fin, log) = svc.shutdown();
        assert_eq!(fin.schedule(), seq.schedule());
        assert_eq!(log.len(), 4, "every applied op was recorded");
        assert!(log.iter().all(|a| a.session == client.session()));
    }

    #[test]
    fn errors_cross_the_channel_intact() {
        let svc = concurrent(4, ReferencePolicy::Fcfs);
        let client = svc.client();
        assert_eq!(
            client.submit(9, Dur(1), None),
            Err(ServiceError::BadWidth {
                width: 9,
                machines: 4
            })
        );
        assert_eq!(
            client.query(0, Dur(1), None),
            Err(ServiceError::BadWidth {
                width: 0,
                machines: 4
            })
        );
        assert_eq!(
            client.query(1, Dur(0), None),
            Err(ServiceError::ZeroDuration)
        );
        client.advance(Time(5)).unwrap();
        assert_eq!(
            client.advance(Time(3)),
            Err(ServiceError::InThePast {
                at: Time(3),
                now: Time(5)
            })
        );
        // The clamped variant treats the same target as a no-op.
        let (now, fx) = client.advance_clamped(Time(3)).unwrap();
        assert_eq!(now, Time(5));
        assert!(fx.is_empty());
        assert_eq!(
            client.cancel(0),
            Err(ServiceError::UnknownReservation { id: 0 })
        );
    }

    #[test]
    fn clients_outlive_the_service_gracefully() {
        let svc = concurrent(2, ReferencePolicy::Greedy);
        let client = svc.client();
        client.submit(1, Dur(2), None).unwrap();
        let (_, log) = svc.shutdown();
        assert_eq!(log.len(), 1);
        // Writes after shutdown fail cleanly; snapshot reads still work.
        assert_eq!(
            client.submit(1, Dur(2), None),
            Err(ServiceError::ServiceStopped)
        );
        assert_eq!(client.stats().submitted, 1);
        assert!(client.query(1, Dur(1), None).is_ok());
    }

    #[test]
    fn generations_are_monotone_and_cover_replied_writes() {
        let svc = concurrent(4, ReferencePolicy::Fcfs);
        let client = svc.client();
        let mut last = client.snapshot().generation;
        assert_eq!(last, 0, "pre-write state is generation 0");
        for i in 0..10 {
            client.submit(1, Dur(3), Some(Time(i + 1))).unwrap();
            let snap = client.snapshot();
            assert!(snap.generation > last || snap.stats.submitted as u64 > i);
            assert!(
                snap.stats.submitted as u64 > i,
                "reply delivered but write not visible"
            );
            last = snap.generation;
        }
    }

    /// Two threads hammer one service; afterwards the recorded serial order
    /// replayed on a fresh sequential service reproduces the final state.
    #[test]
    fn serial_log_replays_to_the_same_state() {
        let svc = concurrent(6, ReferencePolicy::Easy);
        let mut handles = Vec::new();
        for t in 0..2u64 {
            let client = svc.client();
            handles.push(std::thread::spawn(move || {
                for i in 0..20u64 {
                    let w = 1 + ((t + i) % 3) as u32;
                    client.submit(w, Dur(2 + i % 4), None).unwrap();
                    if i % 5 == 4 {
                        let target = client.stats().now.saturating_add(Dur(3));
                        client.advance_clamped(target).unwrap();
                    }
                    client.query(2, Dur(5), None).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (fin, log) = svc.shutdown();
        assert_eq!(log.len(), 48, "40 submits + 8 advances, none lost");
        let mut replay =
            ScheduleService::new(ReferencePolicy::Easy, AvailabilityTimeline::constant(6));
        for entry in &log {
            entry.replay(&mut replay);
        }
        assert_eq!(replay.schedule(), fin.schedule());
        assert_eq!(replay.stats(), fin.stats());
    }
}
