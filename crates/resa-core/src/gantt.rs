//! ASCII Gantt-chart rendering.
//!
//! Used by the examples and the experiment binaries to show schedules the way
//! the paper draws them (jobs packed in the machine × time plane, reservations
//! as hatched blocks). The rendering works from a concrete processor
//! assignment so that every row is a processor and every column a time slice.

use crate::instance::ResaInstance;
use crate::schedule::Schedule;
use crate::time::Time;

/// Render `schedule` on `instance` as an ASCII Gantt chart.
///
/// * rows: processors (top row = processor 0);
/// * columns: time, one character per `tick_per_char` ticks;
/// * job cells show the last character of the job id (`0`–`9`, then letters);
/// * reservation cells show `#`;
/// * idle cells show `.`.
///
/// Returns a plain string; an infeasible schedule is rendered as an error
/// message instead (rendering is a debugging aid, not a validation tool).
pub fn render_gantt(instance: &ResaInstance, schedule: &Schedule, tick_per_char: u64) -> String {
    let tick = tick_per_char.max(1);
    let assignment = match schedule.assign_processors(instance) {
        Ok(a) => a,
        Err(e) => return format!("<infeasible schedule: {e}>"),
    };
    let horizon = schedule
        .makespan(instance)
        .max(
            instance
                .reservations()
                .iter()
                .map(|r| r.end())
                .max()
                .unwrap_or(Time::ZERO),
        )
        .ticks();
    let cols = (horizon.div_ceil(tick)) as usize;
    let m = instance.machines() as usize;
    let mut grid = vec![vec!['.'; cols]; m];

    let mut paint = |procs: &[u32], start: Time, end: Time, ch_of: &dyn Fn(usize) -> char| {
        let c0 = (start.ticks() / tick) as usize;
        let c1 = (end.ticks().div_ceil(tick)) as usize;
        for &p in procs {
            let row = &mut grid[p as usize];
            for (c, cell) in row.iter_mut().enumerate().take(c1.min(cols)).skip(c0) {
                *cell = ch_of(c);
            }
        }
    };

    for r in instance.reservations() {
        if let Some(procs) = assignment.of_reservation(r.id) {
            paint(procs, r.start, r.end(), &|_| '#');
        }
    }
    for p in schedule.placements() {
        if let Some(job) = instance.job(p.job) {
            if let Some(procs) = assignment.of_job(p.job) {
                let label = job_label(p.job.0);
                paint(procs, p.start, p.start + job.duration, &|_| label);
            }
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "m={} machines, horizon={} ticks ({} ticks/char)\n",
        m, horizon, tick
    ));
    for (idx, row) in grid.iter().enumerate() {
        out.push_str(&format!("P{idx:>3} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("      ");
    for c in 0..cols {
        out.push(if c % 10 == 0 { '+' } else { '-' });
    }
    out.push('\n');
    out
}

fn job_label(id: usize) -> char {
    const LABELS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    LABELS[id % LABELS.len()] as char
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::ResaInstanceBuilder;
    use crate::job::JobId;

    #[test]
    fn renders_jobs_and_reservations() {
        let inst = ResaInstanceBuilder::new(3)
            .job(2, 2u64)
            .job(1, 4u64)
            .reservation(1, 2u64, 2u64)
            .build()
            .unwrap();
        let mut s = Schedule::new();
        s.place(JobId(0), Time(0));
        s.place(JobId(1), Time(0));
        let txt = render_gantt(&inst, &s, 1);
        assert!(txt.contains("m=3 machines"));
        assert!(txt.contains('#'), "reservation must be drawn: {txt}");
        assert!(txt.contains('0'), "job 0 must be drawn: {txt}");
        assert!(txt.contains('1'), "job 1 must be drawn: {txt}");
        // 3 processor rows + header + axis
        assert_eq!(txt.lines().count(), 5);
    }

    #[test]
    fn infeasible_schedule_is_reported() {
        let inst = ResaInstanceBuilder::new(2)
            .job(2, 2u64)
            .job(2, 2u64)
            .build()
            .unwrap();
        let mut s = Schedule::new();
        s.place(JobId(0), Time(0));
        s.place(JobId(1), Time(0));
        let txt = render_gantt(&inst, &s, 1);
        assert!(txt.contains("infeasible"));
    }

    #[test]
    fn tick_scaling_reduces_columns() {
        let inst = ResaInstanceBuilder::new(2).job(1, 100u64).build().unwrap();
        let mut s = Schedule::new();
        s.place(JobId(0), Time(0));
        let fine = render_gantt(&inst, &s, 1);
        let coarse = render_gantt(&inst, &s, 10);
        assert!(fine.len() > coarse.len());
    }

    #[test]
    fn job_labels_cycle() {
        assert_eq!(job_label(0), '0');
        assert_eq!(job_label(10), 'a');
        assert_eq!(job_label(62), '0');
    }
}
