//! E9: on-line policies and the batch-doubling wrapper (§2.1).

use resa_bench::{online_batch_experiment, online_table};

fn main() {
    let rows = online_batch_experiment(64, 200, 8, 6);
    let table = online_table(&rows);
    resa_bench::emit("table_online_batch", &table, &rows);
    println!(
        "Reading: the batch-doubling wrapper stays well within twice the clairvoyant off-line\n\
         makespan, the empirical face of the doubling argument recalled in §2.1."
    );
}
