//! Crash-safe durability for the resident service: a write-ahead op journal.
//!
//! [`crate::concurrent::ConcurrentService`] already proves (via its serial
//! log of [`AppliedOp`]s) that replaying the writer's dequeue order on a
//! fresh sequential [`ScheduleService`] reproduces the live state bit for
//! bit. This module persists that log: an [`OpJournal`] appends one
//! length-prefixed, CRC-checksummed record per applied op **before** the op
//! is applied (write-ahead), so a process killed at any instant can be
//! rebuilt by replaying the journal's valid prefix.
//!
//! # Record format
//!
//! A journal file starts with a 13-byte header — the magic `RESAJRN1`, the
//! cluster size as a little-endian `u32`, and a one-byte policy code — so a
//! journal can never be replayed against a differently-shaped service.
//! Every record after the header is framed as
//!
//! ```text
//! [payload len: u32 LE][crc32(payload): u32 LE][payload bytes]
//! ```
//!
//! with the CRC-32 (IEEE polynomial) taken over the payload only. The first
//! payload byte is the record kind: `1` = op record (a serialized
//! [`AppliedOp`]), `2` = snapshot record (a serialized
//! [`ServiceState`] — see *Compaction*). All integers are fixed-width
//! little-endian; no floats appear anywhere, so the format round-trips
//! exactly.
//!
//! # Torn tails
//!
//! A crash mid-append leaves a *torn tail*: a final record whose length
//! prefix, payload, or CRC is incomplete or wrong. Recovery scans records
//! from the front and stops at the **first** invalid one, truncating the
//! file back to the last valid boundary and reporting the discarded bytes
//! in [`Recovered::torn`] — never silently. Because records are written
//! before their op is applied, a torn record corresponds to an op whose
//! outcome was never acknowledged; dropping it yields a state equal to some
//! prefix of the serial order, which is exactly the contract the
//! corruption proptests in `tests/journal_recovery.rs` enforce.
//!
//! # Fsync policy
//!
//! [`FsyncPolicy`] trades durability for throughput: `Every` syncs each op
//! record, `Batch` syncs once per writer batch (before the batch's replies
//! are delivered, so an acknowledged op is always durable), and `Off`
//! buffers in memory and lets the OS decide — the cheapest option, with the
//! weakest guarantee (a crash can lose acknowledged ops, but recovery still
//! yields a valid serial prefix).
//!
//! # Compaction
//!
//! Replay cost is bounded by periodic snapshot records: once
//! [`JournalCfg::snapshot_every`] ops have accumulated, the journal is
//! rewritten (atomically: temp file + fsync + rename) as a single snapshot
//! record of the current [`ServiceState`], and subsequent ops append after
//! it. Recovery restores the last snapshot and replays only the ops behind
//! it.
//!
//! # Fault injection
//!
//! Setting `RESA_FAIL_AFTER_RECORD=n` in the environment makes the journal
//! write a strict prefix of its `n`-th op record (0-based) and then abort
//! the process — a deterministic torn-tail generator the crash-recovery
//! integration tests point at the release binary. The low-level
//! [`write_record`] / [`read_record`] helpers are generic over
//! `io::Write` / `io::Read` so unit tests can also inject short writes and
//! disk-full errors without touching the filesystem.

use crate::concurrent::{AppliedOp, WriteOp};
use crate::reference::ReferencePolicy;
use crate::service::{
    AdmissionPolicy, DeadlineOutcome, DrainMode, Effects, ScheduleService, ServiceError,
    ServiceState,
};
use resa_core::capacity::Speculate;
use resa_core::prelude::*;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File magic: identifies a resa op journal, version 1.
pub const MAGIC: [u8; 8] = *b"RESAJRN1";
/// Header length: magic + machines (`u32`) + policy code (`u8`).
const HEADER_LEN: u64 = 13;
/// Upper bound on a single record's payload; lengths above this are treated
/// as corruption (a torn length prefix can decode to anything).
const MAX_RECORD: u32 = 1 << 28;
/// Payload kind byte of an op record.
const KIND_OP: u8 = 1;
/// Payload kind byte of a snapshot record.
const KIND_SNAPSHOT: u8 = 2;
/// `Off`-policy write-behind buffer: queued bytes are handed to the OS
/// (without syncing) once they exceed this.
const OFF_FLUSH_BYTES: usize = 64 * 1024;
/// Failpoint variable: abort with a torn tail after this many op appends.
pub const FAIL_AFTER_RECORD_ENV: &str = "RESA_FAIL_AFTER_RECORD";

// -- crc32 -------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `bytes` — the checksum in
/// every record frame.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// -- codec -------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Forward-only reader over a payload; every `take_*` returns `None` once
/// the payload is exhausted, which the decoders surface as corruption.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, at: 0 }
    }

    fn take_u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.at)?;
        self.at += 1;
        Some(b)
    }

    fn take_u32(&mut self) -> Option<u32> {
        let raw = self.bytes.get(self.at..self.at + 4)?;
        self.at += 4;
        Some(u32::from_le_bytes(raw.try_into().expect("4-byte slice")))
    }

    fn take_u64(&mut self) -> Option<u64> {
        let raw = self.bytes.get(self.at..self.at + 8)?;
        self.at += 8;
        Some(u64::from_le_bytes(raw.try_into().expect("8-byte slice")))
    }

    fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

fn policy_code(policy: ReferencePolicy) -> u8 {
    match policy {
        ReferencePolicy::Fcfs => 0,
        ReferencePolicy::Easy => 1,
        ReferencePolicy::Greedy => 2,
    }
}

fn policy_from(code: u8) -> Option<ReferencePolicy> {
    match code {
        0 => Some(ReferencePolicy::Fcfs),
        1 => Some(ReferencePolicy::Easy),
        2 => Some(ReferencePolicy::Greedy),
        _ => None,
    }
}

fn encode_op(buf: &mut Vec<u8>, entry: &AppliedOp) {
    put_u64(buf, entry.session);
    match entry.op {
        WriteOp::Submit {
            width,
            duration,
            release,
        } => {
            buf.push(1);
            put_u32(buf, width);
            put_u64(buf, duration.0);
            match release {
                None => buf.push(0),
                Some(t) => {
                    buf.push(1);
                    put_u64(buf, t.ticks());
                }
            }
        }
        WriteOp::Reserve {
            width,
            duration,
            start,
        } => {
            buf.push(2);
            put_u32(buf, width);
            put_u64(buf, duration.0);
            put_u64(buf, start.ticks());
        }
        WriteOp::Cancel { id } => {
            buf.push(3);
            put_u64(buf, id as u64);
        }
        WriteOp::Advance { to } => {
            buf.push(4);
            put_u64(buf, to.ticks());
        }
        WriteOp::AdvanceClamped { to } => {
            buf.push(5);
            put_u64(buf, to.ticks());
        }
        WriteOp::Drain => buf.push(6),
        WriteOp::Inject {
            width,
            duration,
            start,
        } => {
            buf.push(7);
            put_u32(buf, width);
            put_u64(buf, duration.0);
            put_u64(buf, start.ticks());
        }
        WriteOp::Revoke { id } => {
            buf.push(8);
            put_u64(buf, id as u64);
        }
        WriteOp::SubmitDeadline {
            width,
            duration,
            release,
            deadline,
            admission,
        } => {
            buf.push(9);
            put_u32(buf, width);
            put_u64(buf, duration.0);
            match release {
                None => buf.push(0),
                Some(t) => {
                    buf.push(1);
                    put_u64(buf, t.ticks());
                }
            }
            put_u64(buf, deadline.ticks());
            buf.push(match admission {
                AdmissionPolicy::Reject => 0,
                AdmissionPolicy::Boost => 1,
            });
        }
        WriteOp::SubmitMoldable { ref widths, area } => {
            buf.push(10);
            put_u64(buf, widths.len() as u64);
            for &w in widths {
                put_u32(buf, w);
            }
            put_u64(buf, area);
        }
    }
}

fn decode_op(cur: &mut Cursor<'_>) -> Option<AppliedOp> {
    let session = cur.take_u64()?;
    let op = match cur.take_u8()? {
        1 => {
            let width = cur.take_u32()?;
            let duration = Dur(cur.take_u64()?);
            let release = match cur.take_u8()? {
                0 => None,
                1 => Some(Time(cur.take_u64()?)),
                _ => return None,
            };
            WriteOp::Submit {
                width,
                duration,
                release,
            }
        }
        2 => WriteOp::Reserve {
            width: cur.take_u32()?,
            duration: Dur(cur.take_u64()?),
            start: Time(cur.take_u64()?),
        },
        3 => WriteOp::Cancel {
            id: usize::try_from(cur.take_u64()?).ok()?,
        },
        4 => WriteOp::Advance {
            to: Time(cur.take_u64()?),
        },
        5 => WriteOp::AdvanceClamped {
            to: Time(cur.take_u64()?),
        },
        6 => WriteOp::Drain,
        7 => WriteOp::Inject {
            width: cur.take_u32()?,
            duration: Dur(cur.take_u64()?),
            start: Time(cur.take_u64()?),
        },
        8 => WriteOp::Revoke {
            id: usize::try_from(cur.take_u64()?).ok()?,
        },
        9 => {
            let width = cur.take_u32()?;
            let duration = Dur(cur.take_u64()?);
            let release = match cur.take_u8()? {
                0 => None,
                1 => Some(Time(cur.take_u64()?)),
                _ => return None,
            };
            let deadline = Time(cur.take_u64()?);
            let admission = match cur.take_u8()? {
                0 => AdmissionPolicy::Reject,
                1 => AdmissionPolicy::Boost,
                _ => return None,
            };
            WriteOp::SubmitDeadline {
                width,
                duration,
                release,
                deadline,
                admission,
            }
        }
        10 => {
            let n = usize::try_from(cur.take_u64()?).ok()?;
            let mut widths = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                widths.push(cur.take_u32()?);
            }
            WriteOp::SubmitMoldable {
                widths,
                area: cur.take_u64()?,
            }
        }
        _ => return None,
    };
    Some(AppliedOp { session, op })
}

fn encode_state(buf: &mut Vec<u8>, state: &ServiceState) {
    put_u32(buf, state.machines);
    put_u64(buf, state.now.ticks());
    put_u64(buf, state.decisions);
    put_u64(buf, state.makespan.ticks());
    put_u64(buf, state.jobs.len() as u64);
    for job in &state.jobs {
        put_u32(buf, job.width);
        put_u64(buf, job.duration.0);
        put_u64(buf, job.release.ticks());
    }
    // Scenario flags, parallel to the job catalog.
    for flags in &state.flags {
        match flags.deadline {
            None => buf.push(0),
            Some(t) => {
                buf.push(1);
                put_u64(buf, t.ticks());
            }
        }
        buf.push(u8::from(flags.guaranteed) | (u8::from(flags.boosted) << 1));
    }
    put_u64(buf, state.reservations.len() as u64);
    for r in &state.reservations {
        put_u32(buf, r.width);
        put_u64(buf, r.start.ticks());
        put_u64(buf, r.end.ticks());
        buf.push(u8::from(r.cancelled));
    }
    put_u64(buf, state.drains.len() as u64);
    for d in &state.drains {
        put_u32(buf, d.width);
        put_u64(buf, d.start.ticks());
        put_u64(buf, d.end.ticks());
        buf.push(u8::from(d.revoked));
    }
    put_u64(buf, state.placements.len() as u64);
    for p in &state.placements {
        put_u64(buf, p.job.0 as u64);
        put_u64(buf, p.start.ticks());
    }
    put_u64(buf, state.queue.len() as u64);
    for &pos in &state.queue {
        put_u64(buf, pos as u64);
    }
}

fn decode_state(cur: &mut Cursor<'_>) -> Option<ServiceState> {
    let machines = cur.take_u32()?;
    let now = Time(cur.take_u64()?);
    let decisions = cur.take_u64()?;
    let makespan = Time(cur.take_u64()?);
    let n_jobs = usize::try_from(cur.take_u64()?).ok()?;
    let mut jobs = Vec::with_capacity(n_jobs.min(1 << 20));
    for id in 0..n_jobs {
        let width = cur.take_u32()?;
        let duration = cur.take_u64()?;
        let release = cur.take_u64()?;
        jobs.push(Job::released_at(id, width, duration, release));
    }
    let mut flags = Vec::with_capacity(n_jobs.min(1 << 20));
    for _ in 0..n_jobs {
        let deadline = match cur.take_u8()? {
            0 => None,
            1 => Some(Time(cur.take_u64()?)),
            _ => return None,
        };
        let bits = cur.take_u8()?;
        if bits > 0b11 {
            return None;
        }
        flags.push(crate::service::JobFlags {
            deadline,
            guaranteed: bits & 1 != 0,
            boosted: bits & 2 != 0,
        });
    }
    let n_res = usize::try_from(cur.take_u64()?).ok()?;
    let mut reservations = Vec::with_capacity(n_res.min(1 << 20));
    for id in 0..n_res {
        reservations.push(crate::service::ServiceReservation {
            id,
            width: cur.take_u32()?,
            start: Time(cur.take_u64()?),
            end: Time(cur.take_u64()?),
            cancelled: match cur.take_u8()? {
                0 => false,
                1 => true,
                _ => return None,
            },
        });
    }
    let n_drains = usize::try_from(cur.take_u64()?).ok()?;
    let mut drains = Vec::with_capacity(n_drains.min(1 << 20));
    for id in 0..n_drains {
        drains.push(crate::service::ServiceDrain {
            id,
            width: cur.take_u32()?,
            start: Time(cur.take_u64()?),
            end: Time(cur.take_u64()?),
            revoked: match cur.take_u8()? {
                0 => false,
                1 => true,
                _ => return None,
            },
        });
    }
    let n_place = usize::try_from(cur.take_u64()?).ok()?;
    let mut placements = Vec::with_capacity(n_place.min(1 << 20));
    for _ in 0..n_place {
        let job = usize::try_from(cur.take_u64()?).ok()?;
        if job >= jobs.len() {
            return None;
        }
        placements.push(Placement {
            job: JobId(job),
            start: Time(cur.take_u64()?),
        });
    }
    let n_queue = usize::try_from(cur.take_u64()?).ok()?;
    let mut queue = Vec::with_capacity(n_queue.min(1 << 20));
    for _ in 0..n_queue {
        let pos = usize::try_from(cur.take_u64()?).ok()?;
        if pos >= jobs.len() {
            return None;
        }
        queue.push(pos);
    }
    Some(ServiceState {
        machines,
        now,
        decisions,
        makespan,
        jobs,
        flags,
        reservations,
        drains,
        placements,
        queue,
    })
}

// -- record framing ----------------------------------------------------------

/// Frame `payload` as a journal record — `[len][crc][payload]` — into
/// `out`. Exposed (with [`read_record`]) so tests can drive the framing
/// through injected-error writers.
pub fn frame_record(out: &mut Vec<u8>, payload: &[u8]) {
    put_u32(out, payload.len() as u32);
    put_u32(out, crc32(payload));
    out.extend_from_slice(payload);
}

/// Write one framed record to `w`. A short write or I/O error from `w`
/// propagates untouched — the caller decides whether that is fatal
/// (disk full) or a torn tail to recover from.
pub fn write_record(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let mut framed = Vec::with_capacity(8 + payload.len());
    frame_record(&mut framed, payload);
    w.write_all(&framed)
}

/// Read one framed record from `r`, returning its payload, or `Ok(None)` at
/// clean EOF. Corruption (truncated frame, implausible length, CRC
/// mismatch) is reported as [`io::ErrorKind::InvalidData`].
pub fn read_record(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut head = [0u8; 8];
    match r.read_exact(&mut head[..1]) {
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        other => other?,
    }
    r.read_exact(&mut head[1..])
        .map_err(|_| invalid("truncated record header"))?;
    let len = u32::from_le_bytes(head[..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(head[4..].try_into().expect("4 bytes"));
    if len > MAX_RECORD {
        return Err(invalid("implausible record length"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|_| invalid("truncated record payload"))?;
    if crc32(&payload) != crc {
        return Err(invalid("record checksum mismatch"));
    }
    Ok(Some(payload))
}

fn invalid(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

// -- configuration -----------------------------------------------------------

/// When journal bytes reach stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fdatasync` after every op record: an op is durable before it is
    /// applied. Slowest; survives power loss per op.
    Every,
    /// `fdatasync` once per writer batch, before the batch's replies are
    /// delivered: an *acknowledged* op is always durable. The default.
    #[default]
    Batch,
    /// Buffer in memory, hand bytes to the OS opportunistically, never
    /// sync: near-volatile speed, and a crash may lose acknowledged ops —
    /// but recovery still yields a valid serial prefix.
    Off,
}

impl FsyncPolicy {
    /// Parse the CLI spelling (`every` / `batch` / `off`).
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "every" => Some(FsyncPolicy::Every),
            "batch" => Some(FsyncPolicy::Batch),
            "off" => Some(FsyncPolicy::Off),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            FsyncPolicy::Every => "every",
            FsyncPolicy::Batch => "batch",
            FsyncPolicy::Off => "off",
        }
    }
}

/// Journal tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalCfg {
    /// When appended records reach stable storage.
    pub fsync: FsyncPolicy,
    /// Compact (rewrite the journal as one snapshot record) once this many
    /// op records have accumulated since the last snapshot. Bounds replay
    /// cost at recovery.
    pub snapshot_every: u64,
}

impl Default for JournalCfg {
    fn default() -> Self {
        JournalCfg {
            fsync: FsyncPolicy::default(),
            snapshot_every: 1024,
        }
    }
}

// -- recovery report ---------------------------------------------------------

/// A torn tail found (and truncated away) during recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// File offset of the first invalid byte — the journal was truncated
    /// back to this length.
    pub at_byte: u64,
    /// How many trailing bytes were discarded.
    pub dropped_bytes: u64,
    /// Why the tail failed validation.
    pub reason: String,
}

/// What [`OpJournal::open`] found in an existing journal file.
#[derive(Debug, Clone)]
pub struct Recovered {
    /// The last snapshot record, if the journal has been compacted.
    pub snapshot: Option<ServiceState>,
    /// Op records after the last snapshot, in serial order.
    pub ops: Vec<AppliedOp>,
    /// Number of op records recovered (i.e. `ops.len()`).
    pub op_records: usize,
    /// Number of snapshot records seen (only the last one matters).
    pub snapshot_records: usize,
    /// The torn tail, if the file ended mid-record.
    pub torn: Option<TornTail>,
    /// `true` when the file existed with a valid header (a resumed
    /// session), `false` when this open created it.
    pub resumed: bool,
}

impl Recovered {
    /// Rebuild the live service this journal describes: restore the
    /// snapshot (or start fresh) and replay the remaining ops in order.
    ///
    /// # Panics
    ///
    /// Panics if `substrate.base()` disagrees with the journal's recorded
    /// cluster size ([`OpJournal::open`] already validates the header, so
    /// passing a matching substrate is the caller's only obligation).
    pub fn restore_service<C: CapacityQuery + Speculate>(
        &self,
        policy: ReferencePolicy,
        substrate: C,
    ) -> ScheduleService<C> {
        self.restore_service_with_mode(policy, substrate, DrainMode::Restart)
    }

    /// Like [`Recovered::restore_service`], but configures the drain mode
    /// *before* replaying the op tail, so a session recorded under
    /// [`DrainMode::Checkpoint`] re-preempts during replay exactly as it
    /// did live. The mode is construction-time configuration, not
    /// journaled state: the operator re-supplies it at recovery (the CLI's
    /// `--drain-mode` flag), just like the substrate itself.
    pub fn restore_service_with_mode<C: CapacityQuery + Speculate>(
        &self,
        policy: ReferencePolicy,
        substrate: C,
        mode: DrainMode,
    ) -> ScheduleService<C> {
        let mut svc = match &self.snapshot {
            Some(state) => ScheduleService::restore(policy, state, substrate),
            None => ScheduleService::new(policy, substrate),
        };
        svc.set_drain_mode(mode);
        for op in &self.ops {
            op.replay(&mut svc);
        }
        svc
    }
}

// -- the journal -------------------------------------------------------------

/// A write-ahead journal of [`AppliedOp`] records backed by one file. See
/// the [module docs](crate::journal) for the format and guarantees.
#[derive(Debug)]
pub struct OpJournal {
    path: PathBuf,
    file: File,
    cfg: JournalCfg,
    machines: u32,
    policy: ReferencePolicy,
    /// Encode scratch for one record's payload.
    payload: Vec<u8>,
    /// Framed bytes not yet handed to the OS (`Batch` / `Off` policies).
    queued: Vec<u8>,
    /// Op records in the file since the last snapshot record — the replay
    /// cost a crash right now would incur.
    ops_since_snapshot: u64,
    /// Total op appends this process, for the failpoint.
    op_appends: u64,
    fail_after: Option<u64>,
}

impl OpJournal {
    /// Open (or create) the journal at `path` for a service of `machines`
    /// processors deciding with `policy`, recovering whatever valid prefix
    /// the file already holds.
    ///
    /// A fresh file gets a header and an empty [`Recovered`]. An existing
    /// file is validated — magic, cluster size, and policy must match, a
    /// torn tail is truncated away — and its snapshot + ops are returned
    /// for [`Recovered::restore_service`].
    pub fn open(
        path: impl AsRef<Path>,
        machines: u32,
        policy: ReferencePolicy,
        cfg: JournalCfg,
    ) -> io::Result<(OpJournal, Recovered)> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let recovered = if bytes.is_empty() {
            file.write_all(&header_bytes(machines, policy))?;
            file.sync_data()?;
            Recovered {
                snapshot: None,
                ops: Vec::new(),
                op_records: 0,
                snapshot_records: 0,
                torn: None,
                resumed: false,
            }
        } else {
            let (recovered, valid_len) = scan(&bytes, machines, policy)?;
            if valid_len < bytes.len() as u64 {
                file.set_len(valid_len)?;
                file.sync_data()?;
            }
            file.seek(SeekFrom::Start(valid_len))?;
            recovered
        };
        let fail_after = std::env::var(FAIL_AFTER_RECORD_ENV)
            .ok()
            .and_then(|v| v.parse().ok());
        let ops_since_snapshot = recovered.op_records as u64;
        Ok((
            OpJournal {
                path,
                file,
                cfg,
                machines,
                policy,
                payload: Vec::new(),
                queued: Vec::new(),
                ops_since_snapshot,
                op_appends: 0,
                fail_after,
            },
            recovered,
        ))
    }

    /// The configured fsync policy.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.cfg.fsync
    }

    /// Append one op record (write-ahead: call this *before* applying the
    /// op). Durability depends on the [`FsyncPolicy`]; an error means the
    /// record may not survive a crash, and the caller must **not** apply
    /// the op.
    pub fn append_op(&mut self, entry: &AppliedOp) -> io::Result<()> {
        self.payload.clear();
        self.payload.push(KIND_OP);
        encode_op(&mut self.payload, entry);
        if self.fail_after == Some(self.op_appends) {
            self.abort_with_torn_tail();
        }
        self.op_appends += 1;
        self.ops_since_snapshot += 1;
        match self.cfg.fsync {
            FsyncPolicy::Every => {
                let mut framed = Vec::with_capacity(8 + self.payload.len());
                frame_record(&mut framed, &self.payload);
                self.file.write_all(&framed)?;
                self.file.sync_data()
            }
            FsyncPolicy::Batch => {
                let payload = std::mem::take(&mut self.payload);
                frame_record(&mut self.queued, &payload);
                self.payload = payload;
                Ok(())
            }
            FsyncPolicy::Off => {
                let payload = std::mem::take(&mut self.payload);
                frame_record(&mut self.queued, &payload);
                self.payload = payload;
                if self.queued.len() >= OFF_FLUSH_BYTES {
                    self.file.write_all(&self.queued)?;
                    self.queued.clear();
                }
                Ok(())
            }
        }
    }

    /// Mark a batch boundary: under `Batch`, queued records are written and
    /// synced (call this before acknowledging the batch's ops); under
    /// `Off`, queued records are written without syncing; under `Every`
    /// this is a no-op.
    pub fn batch_sync(&mut self) -> io::Result<()> {
        match self.cfg.fsync {
            FsyncPolicy::Every => Ok(()),
            FsyncPolicy::Batch => {
                if !self.queued.is_empty() {
                    self.file.write_all(&self.queued)?;
                    self.queued.clear();
                }
                self.file.sync_data()
            }
            FsyncPolicy::Off => {
                if !self.queued.is_empty() {
                    self.file.write_all(&self.queued)?;
                    self.queued.clear();
                }
                Ok(())
            }
        }
    }

    /// Compact if the replay debt warrants it: once
    /// [`JournalCfg::snapshot_every`] op records have accumulated, capture
    /// `state` and rewrite the journal as a single snapshot record. Returns
    /// whether a compaction happened. Call at batch boundaries, *after*
    /// the batch's ops were applied, so the captured state covers them.
    pub fn maybe_snapshot(&mut self, state: impl FnOnce() -> ServiceState) -> io::Result<bool> {
        if self.ops_since_snapshot < self.cfg.snapshot_every {
            return Ok(false);
        }
        self.compact(&state())?;
        Ok(true)
    }

    /// Atomically rewrite the journal as `header + one snapshot record` of
    /// `state`: written to a temp file, synced, then renamed over the
    /// journal path — a crash anywhere leaves either the old journal or
    /// the new one, never a mixture. Queued-but-unwritten op records are
    /// dropped: the snapshot covers them (they were already applied).
    pub fn compact(&mut self, state: &ServiceState) -> io::Result<()> {
        self.payload.clear();
        self.payload.push(KIND_SNAPSHOT);
        encode_state(&mut self.payload, state);
        let tmp_path = self.path.with_extension("tmp");
        let mut tmp = File::create(&tmp_path)?;
        tmp.write_all(&header_bytes(self.machines, self.policy))?;
        write_record(&mut tmp, &self.payload)?;
        tmp.sync_data()?;
        std::fs::rename(&tmp_path, &self.path)?;
        // Make the rename itself durable where the platform allows it.
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        // The temp handle now owns the inode living at the journal path,
        // already positioned at end-of-file.
        self.file = tmp;
        self.queued.clear();
        self.ops_since_snapshot = 0;
        Ok(())
    }

    /// The failpoint: write a strict prefix of the pending record, push it
    /// to the OS, and die without unwinding — a deterministic torn tail.
    fn abort_with_torn_tail(&mut self) -> ! {
        let mut framed = Vec::with_capacity(8 + self.payload.len());
        frame_record(&mut framed, &self.payload);
        let torn = &framed[..framed.len() / 2];
        let _ = self.file.write_all(&self.queued);
        let _ = self.file.write_all(torn);
        let _ = self.file.sync_data();
        std::process::abort();
    }
}

impl Drop for OpJournal {
    /// Best-effort flush of queued records on clean shutdown; errors are
    /// ignored (the process is exiting, and `Off` never promised
    /// durability).
    fn drop(&mut self) {
        if !self.queued.is_empty() {
            let _ = self.file.write_all(&self.queued);
        }
        let _ = self.file.sync_data();
    }
}

fn header_bytes(machines: u32, policy: ReferencePolicy) -> Vec<u8> {
    let mut h = Vec::with_capacity(HEADER_LEN as usize);
    h.extend_from_slice(&MAGIC);
    h.extend_from_slice(&machines.to_le_bytes());
    h.push(policy_code(policy));
    h
}

/// Scan a journal image: validate the header against the expected shape,
/// walk records until the first invalid one, and return what was recovered
/// plus the valid byte length.
fn scan(bytes: &[u8], machines: u32, policy: ReferencePolicy) -> io::Result<(Recovered, u64)> {
    if bytes.len() < HEADER_LEN as usize || bytes[..8] != MAGIC {
        return Err(invalid("not a resa op journal (bad magic)"));
    }
    let file_machines = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let file_policy = policy_from(bytes[12]).ok_or_else(|| invalid("unknown policy code"))?;
    if file_machines != machines || file_policy != policy {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "journal was written for {} machines / policy {}, not {} / {}",
                file_machines,
                file_policy.name(),
                machines,
                policy.name()
            ),
        ));
    }
    let mut snapshot = None;
    let mut snapshot_records = 0usize;
    let mut ops: Vec<AppliedOp> = Vec::new();
    let mut at = HEADER_LEN as usize;
    let mut torn: Option<TornTail> = None;
    while at < bytes.len() {
        let mut reader = &bytes[at..];
        match read_record(&mut reader) {
            Ok(None) => break,
            Ok(Some(payload)) => {
                let mut cur = Cursor::new(&payload[1..]);
                let decoded = match payload.first() {
                    Some(&KIND_OP) => decode_op(&mut cur).filter(|_| cur.done()).map(|op| {
                        ops.push(op);
                    }),
                    Some(&KIND_SNAPSHOT) => {
                        decode_state(&mut cur).filter(|_| cur.done()).map(|state| {
                            snapshot = Some(state);
                            snapshot_records += 1;
                            ops.clear();
                        })
                    }
                    _ => None,
                };
                if decoded.is_none() {
                    torn = Some(TornTail {
                        at_byte: at as u64,
                        dropped_bytes: (bytes.len() - at) as u64,
                        reason: "undecodable record payload".into(),
                    });
                    break;
                }
                at += 8 + payload.len();
            }
            Err(e) => {
                torn = Some(TornTail {
                    at_byte: at as u64,
                    dropped_bytes: (bytes.len() - at) as u64,
                    reason: e.to_string(),
                });
                break;
            }
        }
    }
    let op_records = ops.len();
    Ok((
        Recovered {
            snapshot,
            ops,
            op_records,
            snapshot_records,
            torn,
            resumed: true,
        },
        at as u64,
    ))
}

// -- sequential journaled service --------------------------------------------

/// A [`ScheduleService`] paired with an [`OpJournal`]: the durable backend
/// for single-session transports (`resa serve` over stdio or `--script`).
/// Every mutating request is journaled write-ahead, applied, and sealed —
/// each request is its own batch, so `Batch` behaves like `Every` here.
/// The concurrent transports journal per dequeue batch instead; see
/// [`crate::concurrent::ConcurrentService::with_journal`].
#[derive(Debug)]
pub struct JournaledService<C: CapacityQuery + Speculate> {
    svc: ScheduleService<C>,
    journal: OpJournal,
}

impl<C: CapacityQuery + Speculate> JournaledService<C> {
    /// Pair a (possibly just-recovered) service with its journal.
    pub fn new(svc: ScheduleService<C>, journal: OpJournal) -> Self {
        JournaledService { svc, journal }
    }

    /// The wrapped service, read-only.
    pub fn service(&self) -> &ScheduleService<C> {
        &self.svc
    }

    /// Unpair, handing both halves back.
    pub fn into_parts(self) -> (ScheduleService<C>, OpJournal) {
        let JournaledService { svc, journal } = self;
        (svc, journal)
    }

    fn journaled(&mut self, op: WriteOp) -> Result<(), ServiceError> {
        self.journal
            .append_op(&AppliedOp { session: 0, op })
            .map_err(|e| ServiceError::Journal {
                message: e.to_string(),
            })
    }

    /// Seal the single-request batch: sync per policy, then compact if the
    /// replay debt crossed the threshold.
    fn seal(&mut self) -> Result<(), ServiceError> {
        let journal_err = |e: io::Error| ServiceError::Journal {
            message: e.to_string(),
        };
        self.journal.batch_sync().map_err(journal_err)?;
        let svc = &self.svc;
        self.journal
            .maybe_snapshot(|| svc.state())
            .map_err(journal_err)?;
        Ok(())
    }

    /// Journaled [`ScheduleService::submit`].
    pub fn submit(
        &mut self,
        width: u32,
        duration: Dur,
        release: Option<Time>,
    ) -> Result<(JobId, Effects), ServiceError> {
        self.journaled(WriteOp::Submit {
            width,
            duration,
            release,
        })?;
        let out = self
            .svc
            .submit(width, duration, release)
            .map(|(id, fx)| (id, fx.clone()));
        self.seal()?;
        out
    }

    /// Journaled [`ScheduleService::reserve`].
    pub fn reserve(
        &mut self,
        width: u32,
        duration: Dur,
        start: Time,
    ) -> Result<(usize, Effects), ServiceError> {
        self.journaled(WriteOp::Reserve {
            width,
            duration,
            start,
        })?;
        let out = self
            .svc
            .reserve(width, duration, start)
            .map(|(id, fx)| (id, fx.clone()));
        self.seal()?;
        out
    }

    /// Journaled [`ScheduleService::cancel`].
    pub fn cancel(&mut self, id: usize) -> Result<Effects, ServiceError> {
        self.journaled(WriteOp::Cancel { id })?;
        let out = self.svc.cancel(id).cloned();
        self.seal()?;
        out
    }

    /// Journaled [`ScheduleService::inject`]; returns the drain id, the
    /// preempted job ids and the triggered effects.
    pub fn inject(
        &mut self,
        width: u32,
        duration: Dur,
        start: Time,
    ) -> Result<(usize, Vec<JobId>, Effects), ServiceError> {
        self.journaled(WriteOp::Inject {
            width,
            duration,
            start,
        })?;
        let res = self
            .svc
            .inject(width, duration, start)
            .map(|(id, fx)| (id, fx.clone()));
        let out = res.map(|(id, fx)| (id, self.svc.last_preempted().to_vec(), fx));
        self.seal()?;
        out
    }

    /// Journaled [`ScheduleService::revoke`].
    pub fn revoke(&mut self, id: usize) -> Result<Effects, ServiceError> {
        self.journaled(WriteOp::Revoke { id })?;
        let out = self.svc.revoke(id).cloned();
        self.seal()?;
        out
    }

    /// Journaled [`ScheduleService::submit_deadline`].
    pub fn submit_deadline(
        &mut self,
        width: u32,
        duration: Dur,
        release: Option<Time>,
        deadline: Time,
        admission: AdmissionPolicy,
    ) -> Result<(JobId, DeadlineOutcome, Effects), ServiceError> {
        self.journaled(WriteOp::SubmitDeadline {
            width,
            duration,
            release,
            deadline,
            admission,
        })?;
        let out = self
            .svc
            .submit_deadline(width, duration, release, deadline, admission)
            .map(|(id, outcome, fx)| (id, outcome, fx.clone()));
        self.seal()?;
        out
    }

    /// Journaled [`ScheduleService::submit_moldable`].
    pub fn submit_moldable(
        &mut self,
        widths: &[u32],
        area: u64,
    ) -> Result<(JobId, WidthChoice, Effects), ServiceError> {
        self.journaled(WriteOp::SubmitMoldable {
            widths: widths.to_vec(),
            area,
        })?;
        let out = self
            .svc
            .submit_moldable(widths, area)
            .map(|(id, choice, fx)| (id, choice, fx.clone()));
        self.seal()?;
        out
    }

    /// Journaled [`ScheduleService::advance`].
    pub fn advance(&mut self, to: Time) -> Result<(Time, Effects), ServiceError> {
        self.journaled(WriteOp::Advance { to })?;
        let out = self.svc.advance(to).cloned();
        self.seal()?;
        out.map(|fx| (self.svc.now(), fx))
    }

    /// Journaled [`ScheduleService::advance_clamped`].
    pub fn advance_clamped(&mut self, to: Time) -> Result<(Time, Effects), ServiceError> {
        self.journaled(WriteOp::AdvanceClamped { to })?;
        let fx = self.svc.advance_clamped(to).clone();
        self.seal()?;
        Ok((self.svc.now(), fx))
    }

    /// Journaled [`ScheduleService::drain`].
    pub fn drain(&mut self) -> Result<(Time, Effects), ServiceError> {
        self.journaled(WriteOp::Drain)?;
        let fx = self.svc.drain().clone();
        self.seal()?;
        Ok((self.svc.now(), fx))
    }

    /// [`ScheduleService::query`] — read-only, not journaled.
    pub fn query(
        &mut self,
        width: u32,
        duration: Dur,
        not_before: Option<Time>,
    ) -> Result<Option<Time>, ServiceError> {
        self.svc.query(width, duration, not_before)
    }

    /// [`ScheduleService::stats`] — read-only, not journaled.
    pub fn stats(&self) -> crate::service::ServiceStats {
        self.svc.stats()
    }

    /// [`ScheduleService::snapshot`] — read-only, not journaled.
    pub fn snapshot(&self) -> (Vec<crate::trace::JobRecord>, crate::metrics::SimMetrics) {
        self.svc.snapshot()
    }

    /// The configured policy.
    pub fn policy(&self) -> ReferencePolicy {
        self.svc.policy()
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.svc.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceStats;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("resa-journal-{}-{name}.jrn", std::process::id()));
        p
    }

    fn cfg(fsync: FsyncPolicy, snapshot_every: u64) -> JournalCfg {
        JournalCfg {
            fsync,
            snapshot_every,
        }
    }

    fn drive(j: &mut JournaledService<AvailabilityTimeline>) -> ServiceStats {
        j.submit(2, Dur(5), None).unwrap();
        j.reserve(1, Dur(3), Time(4)).unwrap();
        j.submit(3, Dur(2), Some(Time(6))).unwrap();
        j.advance(Time(5)).unwrap();
        j.submit(1, Dur(4), None).unwrap();
        j.drain().unwrap();
        j.stats()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn ops_roundtrip_through_the_codec() {
        let ops = [
            WriteOp::Submit {
                width: 3,
                duration: Dur(7),
                release: None,
            },
            WriteOp::Submit {
                width: 1,
                duration: Dur(1),
                release: Some(Time(9)),
            },
            WriteOp::Reserve {
                width: 2,
                duration: Dur(4),
                start: Time(11),
            },
            WriteOp::Cancel { id: 5 },
            WriteOp::Advance { to: Time(42) },
            WriteOp::AdvanceClamped { to: Time(3) },
            WriteOp::Drain,
            WriteOp::Inject {
                width: 2,
                duration: Dur(6),
                start: Time(13),
            },
            WriteOp::Revoke { id: 2 },
            WriteOp::SubmitDeadline {
                width: 4,
                duration: Dur(3),
                release: Some(Time(2)),
                deadline: Time(20),
                admission: AdmissionPolicy::Reject,
            },
            WriteOp::SubmitDeadline {
                width: 1,
                duration: Dur(2),
                release: None,
                deadline: Time(5),
                admission: AdmissionPolicy::Boost,
            },
            WriteOp::SubmitMoldable {
                widths: vec![1, 2, 4],
                area: 12,
            },
            WriteOp::SubmitMoldable {
                widths: vec![],
                area: 0,
            },
        ];
        for (session, op) in ops.into_iter().enumerate() {
            let entry = AppliedOp {
                session: session as u64,
                op,
            };
            let mut buf = Vec::new();
            encode_op(&mut buf, &entry);
            let mut cur = Cursor::new(&buf);
            let back = decode_op(&mut cur).expect("decodes");
            assert!(cur.done());
            assert_eq!(back, entry);
        }
    }

    #[test]
    fn recovery_reproduces_the_journaled_session_for_each_fsync_policy() {
        for fsync in [FsyncPolicy::Every, FsyncPolicy::Batch, FsyncPolicy::Off] {
            let path = tmp(&format!("roundtrip-{}", fsync.name()));
            let _ = std::fs::remove_file(&path);
            let (journal, rec) =
                OpJournal::open(&path, 8, ReferencePolicy::Easy, cfg(fsync, 1024)).unwrap();
            assert!(!rec.resumed);
            let svc =
                ScheduleService::new(ReferencePolicy::Easy, AvailabilityTimeline::constant(8));
            let mut live = JournaledService::new(svc, journal);
            let stats = drive(&mut live);
            let (fin, journal) = live.into_parts();
            drop(journal); // flush queued records

            let (_, rec) =
                OpJournal::open(&path, 8, ReferencePolicy::Easy, cfg(fsync, 1024)).unwrap();
            assert!(rec.resumed);
            assert!(rec.torn.is_none());
            assert_eq!(rec.op_records, 6, "five mutators + drain");
            let replayed =
                rec.restore_service(ReferencePolicy::Easy, AvailabilityTimeline::constant(8));
            assert_eq!(replayed.stats(), stats);
            assert_eq!(replayed.schedule(), fin.schedule());
            assert_eq!(replayed.state(), fin.state());
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn scenario_session_recovers_identically_under_checkpoint_mode() {
        let path = tmp("scenario");
        let _ = std::fs::remove_file(&path);
        let (journal, _) = OpJournal::open(
            &path,
            8,
            ReferencePolicy::Fcfs,
            cfg(FsyncPolicy::Every, 1024),
        )
        .unwrap();
        let mut svc =
            ScheduleService::new(ReferencePolicy::Fcfs, AvailabilityTimeline::constant(8));
        svc.set_drain_mode(DrainMode::Checkpoint);
        let mut live = JournaledService::new(svc, journal);
        live.submit(8, Dur(10), None).unwrap();
        live.advance(Time(2)).unwrap();
        // The drain preempts the full-width job; Checkpoint mode banks its
        // two elapsed ticks, which replay must reproduce.
        let (d, preempted, _) = live.inject(8, Dur(3), Time(2)).unwrap();
        assert_eq!(preempted.len(), 1);
        live.submit_deadline(2, Dur(2), Some(Time(30)), Time(40), AdmissionPolicy::Reject)
            .unwrap();
        live.submit_deadline(8, Dur(4), None, Time(5), AdmissionPolicy::Boost)
            .unwrap();
        live.submit_moldable(&[1, 2, 4], 8).unwrap();
        live.revoke(d).unwrap();
        let (fin, journal) = live.into_parts();
        drop(journal);

        let (_, rec) = OpJournal::open(
            &path,
            8,
            ReferencePolicy::Fcfs,
            cfg(FsyncPolicy::Every, 1024),
        )
        .unwrap();
        assert!(rec.resumed);
        assert!(rec.torn.is_none());
        let replayed = rec.restore_service_with_mode(
            ReferencePolicy::Fcfs,
            AvailabilityTimeline::constant(8),
            DrainMode::Checkpoint,
        );
        assert_eq!(replayed.state(), fin.state());
        assert_eq!(replayed.drains(), fin.drains());
        assert_eq!(replayed.job_flags(), fin.job_flags());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_bounds_replay_and_survives_recovery() {
        let path = tmp("compact");
        let _ = std::fs::remove_file(&path);
        let (journal, _) =
            OpJournal::open(&path, 4, ReferencePolicy::Fcfs, cfg(FsyncPolicy::Batch, 3)).unwrap();
        let svc = ScheduleService::new(ReferencePolicy::Fcfs, AvailabilityTimeline::constant(4));
        let mut live = JournaledService::new(svc, journal);
        for i in 0..10u64 {
            live.submit(1 + (i % 3) as u32, Dur(2 + i % 4), None)
                .unwrap();
        }
        live.drain().unwrap();
        let (fin, journal) = live.into_parts();
        drop(journal);

        let (_, rec) =
            OpJournal::open(&path, 4, ReferencePolicy::Fcfs, cfg(FsyncPolicy::Batch, 3)).unwrap();
        assert!(rec.snapshot.is_some(), "compaction wrote a snapshot record");
        assert!(
            (rec.op_records as u64) < 3,
            "replay debt stays under the threshold, got {}",
            rec.op_records
        );
        let replayed =
            rec.restore_service(ReferencePolicy::Fcfs, AvailabilityTimeline::constant(4));
        assert_eq!(replayed.state(), fin.state());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let (journal, _) = OpJournal::open(
            &path,
            8,
            ReferencePolicy::Greedy,
            cfg(FsyncPolicy::Every, 1024),
        )
        .unwrap();
        let svc = ScheduleService::new(ReferencePolicy::Greedy, AvailabilityTimeline::constant(8));
        let mut live = JournaledService::new(svc, journal);
        live.submit(2, Dur(5), None).unwrap();
        live.submit(4, Dur(2), None).unwrap();
        drop(live);

        // Tear the file mid-way through the last record.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();

        let (_, rec) = OpJournal::open(
            &path,
            8,
            ReferencePolicy::Greedy,
            cfg(FsyncPolicy::Every, 1024),
        )
        .unwrap();
        let torn = rec.torn.as_ref().expect("tail reported");
        assert_eq!(rec.op_records, 1, "only the intact record survives");
        assert!(torn.dropped_bytes > 0);
        // The truncation is persistent: reopening again finds a clean file.
        let (_, rec2) = OpJournal::open(
            &path,
            8,
            ReferencePolicy::Greedy,
            cfg(FsyncPolicy::Every, 1024),
        )
        .unwrap();
        assert!(rec2.torn.is_none());
        assert_eq!(rec2.op_records, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mismatched_shape_is_refused() {
        let path = tmp("shape");
        let _ = std::fs::remove_file(&path);
        let (journal, _) =
            OpJournal::open(&path, 8, ReferencePolicy::Easy, JournalCfg::default()).unwrap();
        drop(journal);
        let err = OpJournal::open(&path, 4, ReferencePolicy::Easy, JournalCfg::default())
            .expect_err("different cluster size");
        assert!(err.to_string().contains("8 machines"));
        let err = OpJournal::open(&path, 8, ReferencePolicy::Fcfs, JournalCfg::default())
            .expect_err("different policy");
        assert!(err.to_string().contains("EASY"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn garbage_files_are_refused_not_replayed() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not a journal").unwrap();
        let err = OpJournal::open(&path, 8, ReferencePolicy::Easy, JournalCfg::default())
            .expect_err("bad magic");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    /// An `io::Write` that fails after a budget of bytes — the disk-full /
    /// short-write fault model for the framing layer.
    struct FailingWriter {
        budget: usize,
        written: Vec<u8>,
    }

    impl Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.budget == 0 {
                return Err(io::Error::new(io::ErrorKind::WriteZero, "disk full"));
            }
            let n = buf.len().min(self.budget);
            self.written.extend_from_slice(&buf[..n]);
            self.budget -= n;
            Ok(n)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn injected_write_errors_surface_and_leave_a_recoverable_prefix() {
        let mut entry_bytes = Vec::new();
        entry_bytes.push(KIND_OP);
        encode_op(
            &mut entry_bytes,
            &AppliedOp {
                session: 0,
                op: WriteOp::Drain,
            },
        );
        // Enough budget for one full record, then a short-write failure.
        let mut w = FailingWriter {
            budget: 8 + entry_bytes.len() + 4,
            written: Vec::new(),
        };
        write_record(&mut w, &entry_bytes).expect("first record fits");
        let err = write_record(&mut w, &entry_bytes).expect_err("second is short-written");
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        // The bytes that did land are a valid record followed by a torn
        // tail — exactly what recovery handles.
        let mut r = &w.written[..];
        let first = read_record(&mut r).unwrap().expect("intact record");
        assert_eq!(first, entry_bytes);
        assert!(read_record(&mut r).is_err(), "tail is detectably torn");
    }

    #[test]
    fn bitflips_never_pass_the_crc() {
        let mut payload = Vec::new();
        payload.push(KIND_OP);
        encode_op(
            &mut payload,
            &AppliedOp {
                session: 7,
                op: WriteOp::Advance { to: Time(99) },
            },
        );
        let mut framed = Vec::new();
        frame_record(&mut framed, &payload);
        for bit in 0..framed.len() * 8 {
            let mut corrupt = framed.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            let mut r = &corrupt[..];
            match read_record(&mut r) {
                Err(_) => {}
                Ok(Some(p)) => {
                    // A flip in the length prefix can only "succeed" by
                    // shortening the frame; the payload CRC still guards
                    // content, so a successful read must equal the
                    // original payload (flip landed in trailing garbage).
                    assert_eq!(p, payload, "bit {bit} produced a different payload");
                }
                Ok(None) => panic!("bit {bit} produced silent EOF"),
            }
        }
    }
}
