//! Corruption-model proptests for the op journal (ISSUE 8, satellite 3).
//!
//! The contract under test: whatever happens to a journal file's *tail* —
//! truncation at an arbitrary byte, bit-flips from a dying disk — recovery
//! yields the state of some **prefix** of the serial op order (never a
//! corrupted or interpolated state), and a torn tail is *reported*, not
//! silently eaten.

use proptest::prelude::*;
use resa_core::prelude::*;
use resa_sim::prelude::*;

/// A miniature op language; every program is valid enough to journal.
#[derive(Debug, Clone)]
enum Op {
    Submit { width: u32, dur: u64, delay: u64 },
    Reserve { width: u32, dur: u64, at: u64 },
    Cancel { id: usize },
    Advance { by: u64 },
}

const MACHINES: u32 = 6;

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u8..8, 1u32..=MACHINES, 1u64..=8, 0u64..=20).prop_map(|(sel, width, dur, x)| {
            match sel {
                // Submits dominate the mix, as in a real session.
                0..=3 => Op::Submit {
                    width,
                    dur,
                    delay: x % 13,
                },
                4 | 5 => Op::Reserve { width, dur, at: x },
                6 => Op::Cancel {
                    id: (x % 4) as usize,
                },
                _ => Op::Advance { by: 1 + x % 6 },
            }
        }),
        1..24,
    )
}

fn apply(svc: &mut JournaledService<AvailabilityTimeline>, op: &Op) {
    match *op {
        Op::Submit { width, dur, delay } => {
            let release = (delay > 0).then(|| Time(svc.now().ticks() + delay));
            let _ = svc.submit(width, Dur(dur), release);
        }
        Op::Reserve { width, dur, at } => {
            let _ = svc.reserve(width, Dur(dur), Time(at));
        }
        Op::Cancel { id } => {
            let _ = svc.cancel(id);
        }
        Op::Advance { by } => {
            let to = Time(svc.now().ticks() + by);
            let _ = svc.advance(to);
        }
    }
}

/// Journal `ops` through a live service and return the file's bytes. With
/// `snapshot_every` large the file is pure op records; small values
/// exercise snapshot records under the same corruption model.
fn journaled_bytes(path: &std::path::Path, ops: &[Op], snapshot_every: u64) -> Vec<u8> {
    let _ = std::fs::remove_file(path);
    let cfg = JournalCfg {
        fsync: FsyncPolicy::Every,
        snapshot_every,
    };
    let (journal, _) = OpJournal::open(path, MACHINES, ReferencePolicy::Easy, cfg).unwrap();
    let mut live = JournaledService::new(
        ScheduleService::new(
            ReferencePolicy::Easy,
            AvailabilityTimeline::constant(MACHINES),
        ),
        journal,
    );
    for op in ops {
        apply(&mut live, op);
    }
    drop(live);
    std::fs::read(path).unwrap()
}

/// Every state reachable by replaying a prefix of `ops` on a fresh
/// sequential service, in prefix-length order (index 0 = empty prefix).
fn prefix_states(ops: &[Op]) -> Vec<ServiceState> {
    let mut svc = ScheduleService::new(
        ReferencePolicy::Easy,
        AvailabilityTimeline::constant(MACHINES),
    );
    let mut states = vec![svc.state()];
    for op in ops {
        match *op {
            Op::Submit { width, dur, delay } => {
                let release = (delay > 0).then(|| Time(svc.now().ticks() + delay));
                let _ = svc.submit(width, Dur(dur), release);
            }
            Op::Reserve { width, dur, at } => {
                let _ = svc.reserve(width, Dur(dur), Time(at));
            }
            Op::Cancel { id } => {
                let _ = svc.cancel(id);
            }
            Op::Advance { by } => {
                let to = Time(svc.now().ticks() + by);
                let _ = svc.advance(to);
            }
        }
        states.push(svc.state());
    }
    states
}

fn recover(path: &std::path::Path) -> std::io::Result<Recovered> {
    OpJournal::open(path, MACHINES, ReferencePolicy::Easy, JournalCfg::default())
        .map(|(_, rec)| rec)
}

fn tmp(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "resa-jrec-{}-{}-{tag}.jrn",
        std::process::id(),
        std::thread::current()
            .name()
            .unwrap_or("t")
            .replace("::", "-")
    ));
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating a valid journal at ANY byte recovers a state equal to
    /// replaying some prefix of the op sequence, and any mid-record cut is
    /// reported as a torn tail.
    #[test]
    fn truncation_recovers_a_serial_prefix(
        ops in arb_ops(),
        cut_pm in 0u32..=1000,
        compacting in 0u8..2,
    ) {
        // Small thresholds put snapshot records under the same knife.
        let snapshot_every = if compacting == 1 { 3 } else { 1024 };
        let path = tmp("trunc");
        let bytes = journaled_bytes(&path, &ops, snapshot_every);
        let header = 13usize;
        prop_assert!(bytes.len() >= header);
        // Cut anywhere from "just the header" to "the full file".
        let cut = header + (bytes.len() - header) * cut_pm as usize / 1000;
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let rec = recover(&path).expect("a truncated journal is recoverable");
        if cut < bytes.len() {
            // Some suffix is gone; if the cut fell mid-record the tail
            // must be reported.
            let torn_expected = rec.torn.is_some();
            if !torn_expected {
                // Cut landed exactly on a record boundary — fine, but then
                // recovery must simply have fewer records.
                prop_assert!(rec.op_records <= ops.len());
            }
        } else {
            prop_assert!(rec.torn.is_none(), "an intact file has no torn tail");
        }
        let restored = rec
            .restore_service(ReferencePolicy::Easy, AvailabilityTimeline::constant(MACHINES))
            .state();
        let prefixes = prefix_states(&ops);
        prop_assert!(
            prefixes.contains(&restored),
            "recovered state is not a prefix of the serial order (cut {cut}/{})",
            bytes.len()
        );
        if cut == bytes.len() {
            prop_assert_eq!(
                &restored,
                &prefixes[ops.len()],
                "an intact journal must recover the FULL run"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// Flipping a random bit in the body either refuses recovery (header
    /// damage) or still yields a serial prefix — never a corrupted state —
    /// and damage before the end is never silent when records are lost.
    #[test]
    fn bitflips_recover_a_serial_prefix_or_refuse(
        ops in arb_ops(),
        flip_pm in 0u32..=1000,
        bit in 0u8..8,
    ) {
        let path = tmp("flip");
        let bytes = journaled_bytes(&path, &ops, 1024);
        let at = (bytes.len() - 1) * flip_pm as usize / 1000;
        let mut corrupt = bytes.clone();
        corrupt[at] ^= 1 << bit;
        std::fs::write(&path, &corrupt).unwrap();

        match recover(&path) {
            Err(_) => {
                // Header damage (magic / shape byte): refusal is correct —
                // nothing was silently replayed.
                prop_assert!(at < 13, "body damage must be recoverable, byte {at} was not");
            }
            Ok(rec) => {
                let restored = rec
                    .restore_service(
                        ReferencePolicy::Easy,
                        AvailabilityTimeline::constant(MACHINES),
                    )
                    .state();
                let prefixes = prefix_states(&ops);
                prop_assert!(
                    prefixes.contains(&restored),
                    "recovered state is not a serial prefix (flip at byte {at} bit {bit})"
                );
                // CRC protection: the flip damages exactly one record;
                // everything before it is intact, everything from it on is
                // discarded. If that discard loses state, the torn tail
                // must be reported — never silent.
                if restored != prefixes[ops.len()] {
                    prop_assert!(
                        rec.torn.is_some(),
                        "records were dropped without reporting a torn tail"
                    );
                }
            }
        }
        std::fs::remove_file(&path).unwrap();
    }
}

/// Deterministic companion: a journal torn exactly at a record boundary
/// reports nothing, one byte past it reports a torn tail of one byte.
#[test]
fn boundary_cuts_are_clean_and_off_boundary_cuts_are_reported() {
    let path = tmp("boundary");
    let ops = vec![
        Op::Submit {
            width: 2,
            dur: 5,
            delay: 0,
        },
        Op::Advance { by: 3 },
    ];
    let bytes = journaled_bytes(&path, &ops, 1024);

    std::fs::write(&path, &bytes[..bytes.len()]).unwrap();
    let rec = recover(&path).unwrap();
    assert!(rec.torn.is_none());
    assert_eq!(rec.op_records, 2);

    std::fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
    let rec = recover(&path).unwrap();
    let torn = rec.torn.expect("mid-record cut is reported");
    assert_eq!(rec.op_records, 1);
    assert!(torn.dropped_bytes > 0);
    assert!(!torn.reason.is_empty());
    std::fs::remove_file(&path).unwrap();
}
