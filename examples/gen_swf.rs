//! Generate a synthetic, release-sorted SWF trace for archive-scale smokes.
//!
//! The CI streaming smoke uses this to fabricate a ~500k-line log without
//! shipping a real archive in the repository:
//!
//! ```text
//! cargo run --release --example gen_swf -- 500000 /tmp/synthetic.swf.gz
//! ```
//!
//! A path ending in `.gz` is gzip-compressed through the vendored deflate
//! (`resa_workloads::gzip`), exercising the same decompression path `resa
//! replay` uses on real archives. Generation is fully deterministic — two
//! invocations with the same arguments produce byte-identical files.

use std::fmt::Write as _;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (jobs, out, machines): (u64, PathBuf, u64) = match args.as_slice() {
        [jobs, out] => (parse(jobs, "jobs"), PathBuf::from(out), 64),
        [jobs, out, m] => (
            parse(jobs, "jobs"),
            PathBuf::from(out),
            parse(m, "machines"),
        ),
        _ => {
            eprintln!("usage: gen_swf <jobs> <out[.gz]> [machines]");
            std::process::exit(2);
        }
    };

    let mut text = String::with_capacity(32 * jobs as usize);
    let _ = writeln!(text, "; MaxProcs: {machines}");
    let _ = writeln!(text, "; synthetic release-sorted trace, {jobs} jobs");
    // Keep the offered load safely under capacity (~30% of a 64-machine
    // cluster at the defaults): overload would grow the wait queue with the
    // trace length, defeating the bounded-memory property the smoke checks.
    let max_width = (machines / 8).max(1);
    for i in 0..jobs {
        // Release dates advance one job per two ticks (sorted, so the replay
        // streams); widths and runtimes cycle through co-prime strides for a
        // mixed but reproducible load.
        let _ = writeln!(
            text,
            "{} {} {} {}",
            i + 1,
            i * 2,
            1 + (i * 7919) % 30,
            1 + (i * 104729) % max_width
        );
    }

    let result = if out.extension().is_some_and(|e| e == "gz") {
        resa_workloads::gzip::write_gz(&out, text.as_bytes())
    } else {
        std::fs::write(&out, &text)
    };
    if let Err(e) = result {
        eprintln!("gen_swf: cannot write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!(
        "wrote {} ({} jobs, {machines} machines)",
        out.display(),
        jobs
    );
}

fn parse(arg: &str, what: &str) -> u64 {
    arg.parse().unwrap_or_else(|_| {
        eprintln!("gen_swf: {what} must be a positive integer, got '{arg}'");
        std::process::exit(2);
    })
}
