//! Memory-ceiling regression test for the streaming replay pipeline.
//!
//! A counting global allocator tracks peak live bytes while `resa replay`
//! streams synthetic traces of 50k and 200k jobs. The bounded-memory claim
//! is that live state scales with the number of *active* jobs, not the trace
//! length — so quadrupling the trace must not grow the peak beyond noise.
//!
//! This is the one test binary in the crate that needs `unsafe`
//! (`GlobalAlloc` is an unsafe trait); the library itself stays
//! `#![forbid(unsafe_code)]`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

/// Wraps the system allocator and maintains a live-bytes high-water mark.
struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(bytes: usize) {
    let live = LIVE.fetch_add(bytes, Relaxed) + bytes;
    PEAK.fetch_max(live, Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                on_alloc(new_size - layout.size());
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Relaxed);
            }
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Peak live bytes allocated while `f` runs (relative to entry).
fn peak_during(f: impl FnOnce()) -> usize {
    let base = LIVE.load(Relaxed);
    PEAK.store(base, Relaxed);
    f();
    PEAK.load(Relaxed).saturating_sub(base)
}

/// A release-sorted trace whose active-job population is independent of its
/// length. The offered load must stay under capacity — one arrival per tick
/// bringing ~7.5 processor-ticks of work against 16 machines (~47%
/// utilization) — otherwise the wait queue itself grows O(n) and the test
/// would measure an overloaded cluster, not the pipeline.
fn write_trace(jobs: u64) -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("resa-stream-mem-{}-{jobs}.swf", std::process::id()));
    let mut text = String::with_capacity(16 * jobs as usize);
    let _ = writeln!(text, "; MaxProcs: 16");
    for i in 0..jobs {
        let _ = writeln!(text, "{} {} {} {}", i + 1, i, 1 + i % 5, 1 + i % 4);
    }
    std::fs::write(&path, &text).unwrap();
    path
}

fn replay_peak(path: &std::path::Path) -> (usize, String) {
    let arg = path.display().to_string();
    let mut stdout = String::new();
    let peak = peak_during(|| {
        let out = resa_cli::run(&["replay", &arg, "--format", "json"]).unwrap();
        stdout = out.stdout;
    });
    (peak, stdout)
}

#[test]
fn streaming_peak_memory_is_independent_of_trace_length() {
    let small = write_trace(50_000);
    let large = write_trace(200_000);

    // Warm up once so lazily initialized runtime structures (thread-local
    // buffers, the first report string) don't get billed to either run.
    let _ = replay_peak(&small);

    let (peak_small, out_small) = replay_peak(&small);
    let (peak_large, out_large) = replay_peak(&large);
    std::fs::remove_file(&small).ok();
    std::fs::remove_file(&large).ok();

    // Both runs streamed to completion with every job placed.
    assert!(out_small.contains("\"jobs\": 50000"), "{out_small}");
    assert!(out_large.contains("\"jobs\": 200000"), "{out_large}");
    assert!(
        out_small.contains("\"schedule_valid\": true"),
        "{out_small}"
    );
    assert!(
        out_large.contains("\"schedule_valid\": true"),
        "{out_large}"
    );

    // 4x the trace, same peak (10% + 2 MiB of noise headroom). A regression
    // back to materialize-then-simulate fails this by an order of magnitude:
    // 200k parsed jobs alone are tens of MiB before the schedule even exists.
    let budget = peak_small + peak_small / 10 + (2 << 20);
    assert!(
        peak_large <= budget,
        "peak grew with trace length: 50k jobs -> {peak_small} B, \
         200k jobs -> {peak_large} B (budget {budget} B)"
    );

    // And an absolute ceiling: the streaming pipeline never needs more than
    // a handful of MiB regardless of scale.
    assert!(
        peak_large < 48 << 20,
        "streaming replay of 200k jobs peaked at {peak_large} B"
    );
}
