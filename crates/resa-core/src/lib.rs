//! # resa-core
//!
//! Model substrate for the reproduction of *"Analysis of Scheduling Algorithms
//! with Reservations"* (Eyraud-Dubois, Mounié, Trystram — IPDPS 2007).
//!
//! The crate defines the two scheduling problems studied by the paper and the
//! data structures every other crate of the workspace builds on:
//!
//! * [`instance::RigidInstance`] — RIGIDSCHEDULING
//!   (`P | p_j, size_j | C_max`): `n` rigid parallel jobs on `m` identical
//!   machines;
//! * [`instance::ResaInstance`] — RESASCHEDULING: the same problem with
//!   advance reservations that withdraw processors during fixed windows;
//! * [`instance::Alpha`] — the exact rational `α` of the α-restricted problem
//!   of §4.2 (`U(t) ≤ (1−α)m`, `q_i ≤ αm`);
//! * [`profile::ResourceProfile`] — the piecewise-constant availability
//!   function `m(t) = m − U(t)` as a normalized breakpoint list, with
//!   linear-scan earliest-fit queries and reserve/release updates (the
//!   canonical, reference representation);
//! * [`timeline::AvailabilityTimeline`] — the same function indexed by a
//!   segment tree in a flat cache-line-aligned SoA layout: `O(log B)`
//!   range-min / earliest-fit / lazy reserve, the backend every scheduler in
//!   `resa-algos` and `resa-sim` runs on;
//! * [`timeline_ref::ReferenceTimeline`] — the pinned previous-generation
//!   pointer layout of the same tree, kept as proptest oracle and benchmark
//!   baseline;
//! * [`capacity::CapacityQuery`] — the trait both implement, so every
//!   algorithm is generic over the substrate;
//! * [`schedule::Schedule`] — start-time assignments, feasibility validation,
//!   makespan/utilization metrics and concrete processor assignments;
//! * [`bounds`] — certified lower bounds on the optimal makespan.
//!
//! ## Quick example
//!
//! ```
//! use resa_core::prelude::*;
//!
//! // A 8-machine cluster, three jobs, one reservation taking 6 machines
//! // during [3, 7).
//! let instance = ResaInstanceBuilder::new(8)
//!     .job(4, 10u64)
//!     .job(2, 5u64)
//!     .job(8, 2u64)
//!     .reservation(6, 4u64, 3u64)
//!     .build()
//!     .unwrap();
//!
//! assert_eq!(instance.machines(), 8);
//! assert_eq!(instance.profile().capacity_at(Time(4)), 2);
//!
//! // Hand-build a schedule and validate it.
//! let mut schedule = Schedule::new();
//! schedule.place(JobId(1), Time(0)); // 2 procs for 5 ticks
//! schedule.place(JobId(0), Time(7)); // 4 procs after the reservation
//! schedule.place(JobId(2), Time(17)); // whole machine afterwards
//! assert!(schedule.is_valid(&instance));
//! assert_eq!(schedule.makespan(&instance), Time(19));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod capacity;
pub mod error;
pub mod gantt;
pub mod instance;
pub mod io;
pub mod job;
pub mod moldable;
pub mod profile;
pub mod reservation;
pub mod schedule;
pub mod snapshot;
pub mod time;
pub mod timeline;
pub mod timeline_ref;
pub mod waitlist;

/// Convenient glob import of the most frequently used items.
pub mod prelude {
    pub use crate::bounds::{lower_bound, lower_bound_rigid};
    pub use crate::capacity::{CapacityQuery, ShadowGuard, Speculate, WindowProfile};
    pub use crate::error::{ModelError, ProfileError, ScheduleError};
    pub use crate::gantt::render_gantt;
    pub use crate::instance::{Alpha, ResaInstance, ResaInstanceBuilder, RigidInstance};
    pub use crate::io::{parse_instance, write_instance};
    pub use crate::job::{Job, JobId};
    pub use crate::moldable::{best_width, MoldableError, WidthChoice};
    pub use crate::profile::ResourceProfile;
    pub use crate::reservation::{Reservation, ReservationId};
    pub use crate::schedule::{Placement, ProcessorAssignment, Schedule};
    pub use crate::snapshot::{Snapshotable, TimelineSnapshot};
    pub use crate::time::{Dur, Time};
    pub use crate::timeline::{AvailabilityTimeline, TxnMark};
    pub use crate::timeline_ref::{RefTxnMark, ReferenceTimeline};
    pub use crate::waitlist::WaitList;
}

#[cfg(test)]
mod proptests {
    use crate::prelude::*;
    use proptest::prelude::*;

    /// Strategy: a small feasible ResaInstance.
    fn arb_instance() -> impl Strategy<Value = ResaInstance> {
        (2u32..=16, 1usize..=10, 0usize..=4).prop_flat_map(|(m, n_jobs, n_res)| {
            let jobs = proptest::collection::vec((1u32..=m, 1u64..=20), n_jobs);
            let reservations = proptest::collection::vec((1u32..=m, 1u64..=10), n_res);
            (Just(m), jobs, reservations).prop_map(|(m, jobs, reservations)| {
                let mut b = ResaInstanceBuilder::new(m);
                for (w, p) in jobs {
                    b = b.job(w, p);
                }
                for (i, (w, p)) in reservations.into_iter().enumerate() {
                    // Pairwise-disjoint windows (start every 11 ticks, length
                    // at most 10) keep any combination feasible.
                    b = b.reservation(w, p, (i as u64) * 11);
                }
                b.build().expect("constructed instances are feasible")
            })
        })
    }

    proptest! {
        /// The availability profile never exceeds the cluster size and the
        /// area function is monotone.
        #[test]
        fn profile_invariants(inst in arb_instance(), t1 in 0u64..100, t2 in 0u64..100) {
            let p = inst.profile();
            prop_assert!(p.capacity_at(Time(t1)) <= inst.machines());
            let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            prop_assert!(p.available_area(Time(lo)) <= p.available_area(Time(hi)));
        }

        /// earliest_fit returns a window that indeed has enough capacity, and
        /// no earlier profile breakpoint would fit.
        #[test]
        fn earliest_fit_is_correct(inst in arb_instance(), w in 1u32..=8, d in 1u64..=15) {
            let p = inst.profile();
            if let Some(t) = p.earliest_fit(w, Dur(d), Time::ZERO) {
                prop_assert!(p.min_capacity_in(t, Dur(d)) >= w);
                // Minimality at breakpoints before t.
                for &(bt, _) in p.steps() {
                    if bt < t {
                        prop_assert!(p.min_capacity_in(bt, Dur(d)) < w);
                    }
                }
            } else {
                prop_assert!(w > p.base());
            }
        }

        /// reserve followed by release restores the profile exactly.
        #[test]
        fn reserve_release_roundtrip(
            m in 2u32..=16, start in 0u64..=50, d in 1u64..=20, w in 1u32..=16
        ) {
            let mut p = ResourceProfile::constant(m);
            let before = p.clone();
            if w <= m {
                p.reserve(Time(start), Dur(d), w).unwrap();
                p.release(Time(start), Dur(d), w).unwrap();
                prop_assert_eq!(p, before);
            } else {
                prop_assert!(p.reserve(Time(start), Dur(d), w).is_err());
                prop_assert_eq!(p, before);
            }
        }

        /// A schedule placing every job at the end of everything else (pure
        /// sequential tail) is always feasible, and its makespan is at least
        /// the certified lower bound.
        #[test]
        fn sequential_schedule_is_feasible(inst in arb_instance()) {
            let p = inst.profile();
            let mut s = Schedule::new();
            let mut t = Time::ZERO;
            for j in inst.jobs() {
                let start = p.earliest_fit(j.width, j.duration, t).unwrap();
                s.place(j.id, start);
                t = start + j.duration;
            }
            prop_assert!(s.is_valid(&inst));
            let lb = lower_bound(&inst).unwrap();
            prop_assert!(s.makespan(&inst) >= lb);
        }

        /// The indexed timeline and the naive profile answer every read-only
        /// query identically on reservation-induced availability functions.
        #[test]
        fn timeline_agrees_with_profile_on_queries(
            inst in arb_instance(), t in 0u64..80, w in 1u32..=16, d in 1u64..=25
        ) {
            let p = inst.profile();
            let tl = inst.timeline();
            prop_assert_eq!(CapacityQuery::capacity_at(&tl, Time(t)), p.capacity_at(Time(t)));
            prop_assert_eq!(
                CapacityQuery::min_capacity_in(&tl, Time(t), Dur(d)),
                p.min_capacity_in(Time(t), Dur(d))
            );
            prop_assert_eq!(
                CapacityQuery::min_capacity_in(&tl, Time(t), Dur(0)),
                p.min_capacity_in(Time(t), Dur(0))
            );
            prop_assert_eq!(
                CapacityQuery::earliest_fit(&tl, w, Dur(d), Time(t)),
                p.earliest_fit(w, Dur(d), Time(t))
            );
            prop_assert_eq!(
                CapacityQuery::next_change_after(&tl, Time(t)),
                p.next_change_after(Time(t))
            );
        }

        /// Random interleaved reserve/release sequences keep the two backends
        /// in lock-step: same errors, same resulting availability function,
        /// and the conversion back to a profile stays lossless.
        #[test]
        fn timeline_agrees_with_profile_under_updates(
            inst in arb_instance(),
            ops in proptest::collection::vec((0u64..60, 1u64..=20, 1u32..=16, 0u32..=1), 1usize..=12)
        ) {
            let mut p = inst.profile();
            let mut tl = inst.timeline();
            prop_assert_eq!(tl.to_profile(), p.clone());
            for (s, d, w, kind) in ops {
                let (rp, rt) = if kind == 0 {
                    (
                        p.reserve(Time(s), Dur(d), w),
                        CapacityQuery::reserve(&mut tl, Time(s), Dur(d), w),
                    )
                } else {
                    (
                        p.release(Time(s), Dur(d), w),
                        CapacityQuery::release(&mut tl, Time(s), Dur(d), w),
                    )
                };
                prop_assert_eq!(rp, rt);
                prop_assert_eq!(tl.to_profile(), p.clone());
            }
            // Round-trip through the timeline is lossless at every point.
            prop_assert_eq!(AvailabilityTimeline::from(&p).to_profile(), p.clone());
        }

        /// The spare-capacity window API answers identically through both
        /// backends on random windows, after random mutations: the scalar
        /// `spare_capacity_until` and the materialized `capacity_profile_in`
        /// step function (which must also agree pointwise with
        /// `capacity_at`).
        #[test]
        fn spare_capacity_queries_agree(
            inst in arb_instance(),
            ops in proptest::collection::vec((0u64..60, 1u64..=20, 1u32..=4), 0usize..=6),
            s in 0u64..=80, len in 0u64..=40,
        ) {
            let mut p = inst.profile();
            let mut tl = inst.timeline();
            for (os, od, ow) in ops {
                let _ = p.reserve(Time(os), Dur(od), ow);
                let _ = CapacityQuery::reserve(&mut tl, Time(os), Dur(od), ow);
            }
            let e = s + len;
            prop_assert_eq!(
                p.spare_capacity_until(Time(s), Time(e)),
                tl.spare_capacity_until(Time(s), Time(e))
            );
            let mut wp = Vec::new();
            let mut wt = Vec::new();
            CapacityQuery::capacity_profile_in(&p, Time(s), Time(e), &mut wp);
            tl.capacity_profile_in(Time(s), Time(e), &mut wt);
            prop_assert_eq!(&wp, &wt);
            for t in s..e {
                let cap = wp[wp.partition_point(|&(bt, _)| bt <= Time(t)) - 1].1;
                prop_assert_eq!(cap, p.capacity_at(Time(t)), "t = {}", t);
            }
            // The WindowProfile view built on either backend answers window
            // minima exactly like the substrate.
            let mut view = WindowProfile::new();
            view.refill(&tl, Time(s), Time(e));
            for t in s..e {
                let d = Dur(e - t);
                prop_assert_eq!(view.min_in(Time(t), d), Some(p.min_capacity_in(Time(t), d)));
            }
        }

        /// (a) Any interleaving of reserve / release / checkpoint / rollback
        /// / commit leaves the timeline query-identical to a naive
        /// `ResourceProfile` that replays the same history: mutations are
        /// applied to both, a rollback rewinds the profile to a snapshot
        /// taken at the matching checkpoint. Marks are resolved in random
        /// stack order, so nesting is exercised too.
        #[test]
        fn transactional_timeline_matches_replayed_profile(
            inst in arb_instance(),
            ops in proptest::collection::vec(
                (0u32..=4, 0u64..60, 1u64..=20, 1u32..=8), 1usize..=24
            ),
        ) {
            let mut tl = inst.timeline();
            let mut p = inst.profile();
            // Outstanding checkpoints with the profile snapshot each took.
            let mut stack: Vec<(TxnMark, ResourceProfile)> = Vec::new();
            for (kind, s, d, w) in ops {
                match kind {
                    0 => {
                        let (rt, rp) = (
                            CapacityQuery::reserve(&mut tl, Time(s), Dur(d), w),
                            p.reserve(Time(s), Dur(d), w),
                        );
                        prop_assert_eq!(rt, rp);
                    }
                    1 => {
                        let (rt, rp) = (
                            CapacityQuery::release(&mut tl, Time(s), Dur(d), w),
                            p.release(Time(s), Dur(d), w),
                        );
                        prop_assert_eq!(rt, rp);
                    }
                    2 => stack.push((tl.checkpoint(), p.clone())),
                    3 => {
                        // Roll back to a random outstanding mark (possibly
                        // skipping inner ones — they are consumed with it).
                        if !stack.is_empty() {
                            let at = (s as usize) % stack.len();
                            let (mark, snapshot) = stack[at].clone();
                            stack.truncate(at);
                            tl.rollback_to(mark);
                            p = snapshot;
                        }
                    }
                    _ => {
                        if !stack.is_empty() {
                            let at = (s as usize) % stack.len();
                            let (mark, _) = stack[at].clone();
                            stack.truncate(at);
                            tl.commit(mark);
                        }
                    }
                }
                prop_assert_eq!(tl.to_profile(), p.clone());
            }
            // Unwind whatever is still open, innermost first.
            while let Some((mark, snapshot)) = stack.pop() {
                tl.rollback_to(mark);
                p = snapshot;
                prop_assert_eq!(tl.to_profile(), p.clone());
            }
            prop_assert!(!tl.in_transaction());
        }

        /// (b) Rollback after a random batch of reserves restores every
        /// breakpoint of the availability function exactly — value-for-value
        /// at every pre-existing breakpoint and as a whole normalized
        /// profile — and the area query agrees with the naive profile
        /// throughout.
        #[test]
        fn rollback_restores_every_breakpoint(
            inst in arb_instance(),
            batch in proptest::collection::vec((0u64..60, 1u64..=20, 1u32..=4), 1usize..=10),
            probe in 0u64..2000,
        ) {
            let probe = probe as u128;
            let mut tl = inst.timeline();
            let before = tl.to_profile();
            let mark = tl.checkpoint();
            for (s, d, w) in batch {
                let _ = CapacityQuery::reserve(&mut tl, Time(s), Dur(d), w);
            }
            prop_assert_eq!(
                tl.earliest_time_with_area(probe),
                tl.to_profile().earliest_time_with_area(probe)
            );
            tl.rollback_to(mark);
            let after = tl.to_profile();
            for &(t, cap) in before.steps() {
                prop_assert_eq!(after.capacity_at(t), cap, "breakpoint at {}", t);
            }
            prop_assert_eq!(
                tl.earliest_time_with_area(probe),
                before.earliest_time_with_area(probe)
            );
            prop_assert_eq!(after, before);
        }

        /// (c) The bulk `from_placements` builder produces the same
        /// availability function as sequential reserves of the same
        /// placements.
        #[test]
        fn from_placements_equals_sequential_reserves(inst in arb_instance()) {
            // A feasible schedule: sequential earliest-fit tail.
            let mut sequential = inst.timeline();
            let mut s = Schedule::new();
            let mut t = Time::ZERO;
            for j in inst.jobs() {
                let start = sequential.earliest_fit(j.width, j.duration, t).unwrap();
                CapacityQuery::reserve(&mut sequential, start, j.duration, j.width).unwrap();
                s.place(j.id, start);
                t = start + j.duration;
            }
            let bulk = AvailabilityTimeline::from_placements(&inst, s.placements()).unwrap();
            prop_assert_eq!(bulk.to_profile(), sequential.to_profile());
        }

        /// Extreme horizons: the same reserve/release script executed near
        /// time 0 and shifted to completion times near `i64::MAX` yields a
        /// capacity function that is an exact translate — no overflow in the
        /// lazy-delta `i64`s, the area `i128`s, or the window arithmetic.
        #[test]
        fn timeline_is_translation_invariant_at_extreme_horizons(
            m in 2u32..=16,
            ops in proptest::collection::vec((0u64..60, 1u64..=20, 1u32..=16, 0u32..=1), 1usize..=12),
            probes in proptest::collection::vec((0u64..100, 1u64..=30, 1u32..=16), 1usize..=8),
        ) {
            let offset = i64::MAX as u64 - 200;
            let mut near = AvailabilityTimeline::constant(m);
            let mut far = AvailabilityTimeline::constant(m);
            for (s, d, w, kind) in ops {
                let (rn, rf) = if kind == 0 {
                    (
                        CapacityQuery::reserve(&mut near, Time(s), Dur(d), w),
                        CapacityQuery::reserve(&mut far, Time(offset + s), Dur(d), w),
                    )
                } else {
                    (
                        CapacityQuery::release(&mut near, Time(s), Dur(d), w),
                        CapacityQuery::release(&mut far, Time(offset + s), Dur(d), w),
                    )
                };
                prop_assert_eq!(rn.is_ok(), rf.is_ok());
            }
            for (t, d, w) in probes {
                prop_assert_eq!(
                    CapacityQuery::capacity_at(&near, Time(t)),
                    CapacityQuery::capacity_at(&far, Time(offset + t))
                );
                prop_assert_eq!(
                    CapacityQuery::min_capacity_in(&near, Time(t), Dur(d)),
                    CapacityQuery::min_capacity_in(&far, Time(offset + t), Dur(d))
                );
                prop_assert_eq!(
                    CapacityQuery::earliest_fit(&near, w, Dur(d), Time(t)).map(|x| x.ticks()),
                    CapacityQuery::earliest_fit(&far, w, Dur(d), Time(offset + t))
                        .map(|x| x.ticks() - offset)
                );
            }
        }

        /// The transactional layer stays exact at extreme horizons: rollback
        /// after reserves whose completion times sit near `i64::MAX` restores
        /// the availability function bit for bit.
        #[test]
        fn rollback_is_exact_at_extreme_horizons(
            m in 2u32..=16,
            batch in proptest::collection::vec((0u64..150, 1u64..=40, 1u32..=8), 1usize..=10),
        ) {
            let offset = i64::MAX as u64 - 500;
            let mut tl = AvailabilityTimeline::constant(m);
            let _ = CapacityQuery::reserve(&mut tl, Time(offset), Dur(3), 1);
            let before = tl.to_profile();
            let mark = tl.checkpoint();
            for (s, d, w) in batch {
                let _ = CapacityQuery::reserve(&mut tl, Time(offset + s), Dur(d), w);
            }
            tl.rollback_to(mark);
            prop_assert_eq!(tl.to_profile(), before);
        }

        /// PR 6 flat layout vs the pinned pointer-layout reference: any
        /// interleaving of reserve / release / checkpoint / rollback /
        /// commit (marks resolved in random stack order, so nesting and the
        /// flat layout's boundary compaction are both exercised) keeps the
        /// two substrates answer-identical — same errors, same availability
        /// function, same earliest-fit and area answers after every step.
        #[test]
        fn flat_timeline_matches_reference_layout(
            inst in arb_instance(),
            ops in proptest::collection::vec(
                (0u32..=4, 0u64..60, 1u64..=20, 1u32..=8), 1usize..=32
            ),
            probe_w in 1u32..=8, probe_d in 1u64..=20, probe_area in 0u64..3000,
        ) {
            let mut flat = inst.timeline();
            let mut rt = ReferenceTimeline::from_profile(&inst.profile());
            let mut stack: Vec<(TxnMark, RefTxnMark)> = Vec::new();
            for (kind, s, d, w) in ops {
                match kind {
                    0 => {
                        let (rf, rr) = (
                            CapacityQuery::reserve(&mut flat, Time(s), Dur(d), w),
                            CapacityQuery::reserve(&mut rt, Time(s), Dur(d), w),
                        );
                        prop_assert_eq!(rf, rr);
                    }
                    1 => {
                        let (rf, rr) = (
                            CapacityQuery::release(&mut flat, Time(s), Dur(d), w),
                            CapacityQuery::release(&mut rt, Time(s), Dur(d), w),
                        );
                        prop_assert_eq!(rf, rr);
                    }
                    2 => stack.push((flat.checkpoint(), rt.checkpoint())),
                    3 => {
                        if !stack.is_empty() {
                            let at = (s as usize) % stack.len();
                            let (fm, rm) = stack[at];
                            stack.truncate(at);
                            flat.rollback_to(fm);
                            rt.rollback_to(rm);
                        }
                    }
                    _ => {
                        if !stack.is_empty() {
                            let at = (s as usize) % stack.len();
                            let (fm, rm) = stack[at];
                            stack.truncate(at);
                            flat.commit(fm);
                            rt.commit(rm);
                        }
                    }
                }
                prop_assert_eq!(flat.to_profile(), rt.to_profile());
                prop_assert_eq!(
                    CapacityQuery::earliest_fit(&flat, probe_w, Dur(probe_d), Time(s)),
                    CapacityQuery::earliest_fit(&rt, probe_w, Dur(probe_d), Time(s))
                );
                prop_assert_eq!(
                    flat.earliest_time_with_area(probe_area as u128),
                    rt.earliest_time_with_area(probe_area as u128)
                );
            }
            while let Some((fm, rm)) = stack.pop() {
                flat.rollback_to(fm);
                rt.rollback_to(rm);
                prop_assert_eq!(flat.to_profile(), rt.to_profile());
            }
            prop_assert!(!flat.in_transaction());
            prop_assert!(!rt.in_transaction());
        }

        /// Flat vs reference at `i64::MAX`-scale horizons: the same shifted
        /// script leaves both layouts agreeing on every probe, including the
        /// area descent (PR 5 overflow audit, replayed against PR 6's
        /// compacting layout).
        #[test]
        fn flat_matches_reference_at_extreme_horizons(
            m in 2u32..=16,
            ops in proptest::collection::vec((0u64..60, 1u64..=20, 1u32..=16, 0u32..=1), 1usize..=12),
            probes in proptest::collection::vec((0u64..100, 1u64..=30, 1u32..=16), 1usize..=8),
        ) {
            let offset = i64::MAX as u64 - 200;
            let mut flat = AvailabilityTimeline::constant(m);
            let mut rt = ReferenceTimeline::constant(m);
            for (s, d, w, kind) in ops {
                let (rf, rr) = if kind == 0 {
                    (
                        CapacityQuery::reserve(&mut flat, Time(offset + s), Dur(d), w),
                        CapacityQuery::reserve(&mut rt, Time(offset + s), Dur(d), w),
                    )
                } else {
                    (
                        CapacityQuery::release(&mut flat, Time(offset + s), Dur(d), w),
                        CapacityQuery::release(&mut rt, Time(offset + s), Dur(d), w),
                    )
                };
                prop_assert_eq!(rf, rr);
            }
            for (t, d, w) in probes {
                prop_assert_eq!(
                    CapacityQuery::capacity_at(&flat, Time(offset + t)),
                    CapacityQuery::capacity_at(&rt, Time(offset + t))
                );
                prop_assert_eq!(
                    CapacityQuery::earliest_fit(&flat, w, Dur(d), Time(offset + t)),
                    CapacityQuery::earliest_fit(&rt, w, Dur(d), Time(offset + t))
                );
                prop_assert_eq!(
                    flat.earliest_time_with_area((t as u128 + 1) * (d as u128) * (m as u128)),
                    rt.earliest_time_with_area((t as u128 + 1) * (d as u128) * (m as u128))
                );
            }
            prop_assert_eq!(flat.to_profile(), rt.to_profile());
        }

        /// Processor assignment of a feasible schedule always verifies.
        #[test]
        fn assignment_verifies(inst in arb_instance()) {
            let p = inst.profile();
            let mut s = Schedule::new();
            let mut t = Time::ZERO;
            for j in inst.jobs() {
                let start = p.earliest_fit(j.width, j.duration, t).unwrap();
                s.place(j.id, start);
                t = start + j.duration;
            }
            let asg = s.assign_processors(&inst).unwrap();
            prop_assert!(asg.verify(&inst, &s).is_ok());
        }
    }
}
