//! Decision-point head-to-head: the PR-2 acceptance bench.
//!
//! Two comparisons, both asserted at runtime (the numbers land in
//! `BENCH_pr2.json` at the workspace root):
//!
//! * **EASY decision loop** — `EasyBackfilling` (spare-capacity scalar
//!   checks, event-jumping clock) vs `EasyBackfillingReference` (the
//!   classical probing formulation: tentative reserve → full shadow
//!   recompute → release per candidate, waking at every event) on a loaded
//!   10 000-job / 512-machine / 1 000-reservation instance. Must be ≥ 5x;
//!   measured ~100x on the reference container. Schedules are asserted
//!   bit-identical.
//! * **figure-scale sweep** — the parallel [`ExperimentRunner`] driving the
//!   optimized simulation engine (indexed waiting set, clone-free
//!   window-based policies) vs the sequential runner driving the
//!   previous-generation path kept in `resa_sim::reference` (per-decision
//!   `Vec<Job>` clone + whole-substrate clone per policy call). Must be
//!   ≥ 3x end-to-end. On a single-core host the whole margin comes from the
//!   algorithmic rewrite; on multicore hosts the thread fan-out multiplies
//!   it. Results are asserted identical run-for-run.
//!
//! `RESA_BENCH_QUICK=1` shrinks both parts to a CI-smoke size (seconds
//! instead of minutes); the smoke keeps the EASY threshold but relaxes the
//! wall-clock-sensitive sweep threshold so a noisy shared runner cannot
//! flake CI — the full run enforces the acceptance numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use resa_algos::prelude::*;
use resa_analysis::prelude::*;
use resa_core::prelude::*;
use resa_sim::prelude::*;
use resa_workloads::prelude::*;
use serde::Serialize;
use std::time::{Duration, Instant};

/// Problem sizes and assertion thresholds for one bench run.
struct Config {
    label: &'static str,
    /// EASY decision loop instance.
    easy_jobs: usize,
    easy_machines: u32,
    easy_reservations: usize,
    /// Figure-scale sweep: seeds × three policies per cell.
    sweep_seeds: u64,
    sweep_jobs: usize,
    sweep_machines: u32,
    sweep_interarrival: u64,
    /// Asserted minimum speedups. The acceptance numbers (≥ 5x / ≥ 3x) are
    /// enforced at full size; the quick CI smoke keeps the EASY threshold
    /// (measured margin ~10x over it) but relaxes the wall-clock-sensitive
    /// sweep threshold so a noisy shared runner cannot flake the build —
    /// the smoke checks the machinery and result equality, the full run
    /// checks the performance contract.
    required_easy_speedup: f64,
    required_sweep_speedup: f64,
}

fn config() -> Config {
    if std::env::var("RESA_BENCH_QUICK").is_ok() {
        Config {
            label: "quick",
            easy_jobs: 1_500,
            easy_machines: 128,
            easy_reservations: 150,
            sweep_seeds: 2,
            sweep_jobs: 1_200,
            sweep_machines: 64,
            sweep_interarrival: 2,
            required_easy_speedup: 5.0,
            required_sweep_speedup: 1.5,
        }
    } else {
        Config {
            label: "full",
            easy_jobs: 10_000,
            easy_machines: 512,
            easy_reservations: 1_000,
            sweep_seeds: 6,
            sweep_jobs: 1_000,
            sweep_machines: 128,
            sweep_interarrival: 2,
            required_easy_speedup: 5.0,
            required_sweep_speedup: 3.0,
        }
    }
}

fn easy_instance(cfg: &Config) -> ResaInstance {
    let jobs = FeitelsonWorkload::for_cluster(cfg.easy_machines, cfg.easy_jobs).generate(42);
    AlphaReservations {
        machines: cfg.easy_machines,
        alpha: Alpha::HALF,
        count: cfg.easy_reservations,
        horizon: 4_000_000,
        max_duration: 2_000,
    }
    .instance(jobs, 42)
}

#[derive(Debug, Serialize)]
struct EasyLoopResult {
    jobs: usize,
    machines: u32,
    reservations: usize,
    optimized_ms: f64,
    reference_ms: f64,
    speedup: f64,
    decision_points: u64,
    backfills: u64,
    required_speedup: f64,
}

#[derive(Debug, Serialize)]
struct SweepResult {
    cells: u64,
    jobs_per_cell: usize,
    machines: u32,
    threads: usize,
    parallel_optimized_ms: f64,
    sequential_reference_ms: f64,
    speedup: f64,
    required_speedup: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    config: String,
    easy_decision_loop: EasyLoopResult,
    figure_scale_sweep: SweepResult,
}

/// One sweep cell on the optimized path: simulate all three policies and
/// fold their makespans (the checksum the baseline must reproduce).
fn sweep_cell_optimized(cfg: &Config, seed: u64) -> u64 {
    let inst = FeitelsonWorkload::for_cluster(cfg.sweep_machines, cfg.sweep_jobs)
        .with_arrivals(cfg.sweep_interarrival)
        .instance(seed);
    let sim = Simulator::new(inst);
    [
        sim.run(&FcfsPolicy),
        sim.run(&EasyPolicy),
        sim.run(&GreedyPolicy),
    ]
    .iter()
    .map(|r| r.metrics.makespan.ticks())
    .sum()
}

/// The same cell on the previous-generation path.
fn sweep_cell_reference(cfg: &Config, seed: u64) -> u64 {
    let inst = FeitelsonWorkload::for_cluster(cfg.sweep_machines, cfg.sweep_jobs)
        .with_arrivals(cfg.sweep_interarrival)
        .instance(seed);
    [
        simulate_reference(&inst, ReferencePolicy::Fcfs),
        simulate_reference(&inst, ReferencePolicy::Easy),
        simulate_reference(&inst, ReferencePolicy::Greedy),
    ]
    .iter()
    .map(|r| r.metrics.makespan.ticks())
    .sum()
}

fn measure_easy_loop(cfg: &Config) -> EasyLoopResult {
    let inst = easy_instance(cfg);
    // Best of three for the fast side: a scheduler stall during one short
    // optimized run must not sink the measured ratio (a stall during the
    // long reference run only errs conservative, so it runs once).
    let mut optimized_time = Duration::MAX;
    let mut measured = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        let run = EasyBackfilling::new().schedule_with_stats(&inst, inst.timeline());
        optimized_time = optimized_time.min(t0.elapsed());
        measured = Some(run);
    }
    let (optimized, stats) = measured.expect("three runs happened");
    let t1 = Instant::now();
    let reference = EasyBackfillingReference::new().schedule_with(&inst, inst.timeline());
    let reference_time = t1.elapsed();
    assert_eq!(
        optimized, reference,
        "spare-capacity EASY must be schedule-identical to the probing reference"
    );
    assert!(optimized.is_valid(&inst));
    let speedup = reference_time.as_secs_f64() / optimized_time.as_secs_f64();
    println!(
        "EASY decision loop ({} jobs / {} machines / {} reservations):\n\
         optimized  {optimized_time:?}  ({} decision points, {} backfills)\n\
         reference  {reference_time:?}\n\
         speedup    {speedup:.1}x",
        cfg.easy_jobs,
        cfg.easy_machines,
        cfg.easy_reservations,
        stats.decision_points,
        stats.backfills,
    );
    EasyLoopResult {
        jobs: cfg.easy_jobs,
        machines: cfg.easy_machines,
        reservations: cfg.easy_reservations,
        optimized_ms: optimized_time.as_secs_f64() * 1e3,
        reference_ms: reference_time.as_secs_f64() * 1e3,
        speedup,
        decision_points: stats.decision_points,
        backfills: stats.backfills,
        required_speedup: cfg.required_easy_speedup,
    }
}

fn measure_sweep(cfg: &Config) -> SweepResult {
    let seeds: Vec<u64> = (0..cfg.sweep_seeds).map(|i| stream_seed(7, i)).collect();
    // Best of two for the fast (parallel + optimized) side; see
    // measure_easy_loop for the rationale.
    let mut parallel_time = Duration::MAX;
    let mut optimized: Vec<u64> = Vec::new();
    for _ in 0..2 {
        let t0 = Instant::now();
        optimized =
            ExperimentRunner::parallel().map_seeds(&seeds, |s| sweep_cell_optimized(cfg, s));
        parallel_time = parallel_time.min(t0.elapsed());
    }
    let t1 = Instant::now();
    let reference: Vec<u64> =
        ExperimentRunner::sequential().map_seeds(&seeds, |s| sweep_cell_reference(cfg, s));
    let sequential_time = t1.elapsed();
    assert_eq!(
        optimized, reference,
        "both runners must produce identical sweep results"
    );
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup = sequential_time.as_secs_f64() / parallel_time.as_secs_f64();
    println!(
        "figure-scale sweep ({} cells × 3 policies, {} jobs / {} machines, {} threads):\n\
         parallel + optimized engine     {parallel_time:?}\n\
         sequential + reference engine   {sequential_time:?}\n\
         speedup                         {speedup:.1}x",
        seeds.len(),
        cfg.sweep_jobs,
        cfg.sweep_machines,
        threads,
    );
    SweepResult {
        cells: cfg.sweep_seeds,
        jobs_per_cell: cfg.sweep_jobs,
        machines: cfg.sweep_machines,
        threads,
        parallel_optimized_ms: parallel_time.as_secs_f64() * 1e3,
        sequential_reference_ms: sequential_time.as_secs_f64() * 1e3,
        speedup,
        required_speedup: cfg.required_sweep_speedup,
    }
}

/// Write the report next to the workspace `Cargo.toml`.
fn persist(report: &BenchReport) {
    let path = std::env::var("CARGO_MANIFEST_DIR")
        .map(|dir| format!("{dir}/../../BENCH_pr2.json"))
        .unwrap_or_else(|_| "BENCH_pr2.json".to_string());
    match std::fs::write(&path, to_json(report)) {
        Ok(()) => println!("[saved {path}]"),
        Err(e) => eprintln!("[could not save {path}: {e}]"),
    }
}

/// The acceptance check: ≥ 5x on the EASY decision loop, ≥ 3x end-to-end on
/// the figure-scale sweep, results persisted to `BENCH_pr2.json`.
fn acceptance(_c: &mut Criterion) {
    let cfg = config();
    println!("decision_points config: {}", cfg.label);
    let easy = measure_easy_loop(&cfg);
    let sweep = measure_sweep(&cfg);
    let report = BenchReport {
        config: cfg.label.to_string(),
        easy_decision_loop: easy,
        figure_scale_sweep: sweep,
    };
    persist(&report);
    assert!(
        report.easy_decision_loop.speedup >= report.easy_decision_loop.required_speedup,
        "acceptance: spare-capacity EASY must be >= {:.0}x the probing reference (got {:.1}x)",
        report.easy_decision_loop.required_speedup,
        report.easy_decision_loop.speedup,
    );
    assert!(
        report.figure_scale_sweep.speedup >= report.figure_scale_sweep.required_speedup,
        "acceptance: the parallel runner on the optimized engine must be >= {:.0}x the \
         sequential reference path (got {:.1}x)",
        report.figure_scale_sweep.required_speedup,
        report.figure_scale_sweep.speedup,
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    targets = acceptance
}
criterion_main!(benches);
