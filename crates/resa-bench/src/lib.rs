//! # resa-bench
//!
//! Experiment harness reproducing every figure of *"Analysis of Scheduling
//! Algorithms with Reservations"* (IPDPS 2007), plus the extension tables
//! listed in DESIGN.md (E5–E9).
//!
//! The crate has two faces:
//!
//! * **experiment binaries** (`src/bin/*.rs`) — `cargo run -p resa-bench --bin
//!   fig3_adversarial` prints the data behind Figure 3 as an aligned table,
//!   a markdown table and (optionally) a JSON blob persisted under the
//!   directory named by the `RESA_RESULTS_DIR` environment variable;
//! * **criterion benches** (`benches/*.rs`) — `cargo bench -p resa-bench`
//!   times the same pipelines so regressions in the algorithms or the solver
//!   are caught.
//!
//! The functions in this library build the tables; binaries and benches only
//! print or time them. The [`experiments`] module packages each of the nine
//! figure/table pipelines as a self-contained [`experiments::ExperimentReport`]
//! builder — the binaries here and the `resa` CLI (`crates/resa-cli`) are both
//! thin shims over it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

use resa_algos::prelude::*;
use resa_analysis::prelude::*;
use resa_core::prelude::*;
use resa_sim::prelude::*;
use resa_workloads::prelude::*;
use serde::Serialize;

/// Render an experiment to stdout in text and markdown form, and optionally
/// persist the JSON payload (set `RESA_RESULTS_DIR=results` to write
/// `results/<name>.json`).
pub fn emit<T: Serialize>(name: &str, table: &Table, payload: &T) {
    print_and_persist(name, table, &to_json(payload));
}

/// The one print-and-persist protocol shared by [`emit`] and
/// [`experiments::emit_report`], so the legacy binaries and the `resa` CLI
/// can never drift apart: aligned text table, markdown table, then the JSON
/// payload under `RESA_RESULTS_DIR` when set.
pub(crate) fn print_and_persist(name: &str, table: &Table, json: &str) {
    println!("{}", table.to_text());
    println!("{}", table.to_markdown());
    if let Ok(dir) = std::env::var("RESA_RESULTS_DIR") {
        let path = std::path::Path::new(&dir).join(format!("{name}.json"));
        if std::fs::create_dir_all(&dir).is_ok() {
            match std::fs::write(&path, json) {
                Ok(()) => println!("[saved {}]", path.display()),
                Err(e) => eprintln!("[could not save {}: {e}]", path.display()),
            }
        }
    }
}

/// One row of the Graham-bound experiment (E5).
#[derive(Debug, Clone, Serialize)]
pub struct GrahamRow {
    /// Cluster size.
    pub machines: u32,
    /// Number of random instances measured.
    pub instances: usize,
    /// Largest measured ratio `C_LSRC / reference`.
    pub worst_ratio: f64,
    /// Mean measured ratio.
    pub mean_ratio: f64,
    /// Ratio reached by the adversarial tightness family.
    pub tight_family_ratio: f64,
    /// The theoretical bound `2 − 1/m`.
    pub bound: f64,
    /// Fraction of instances whose reference was the true optimum.
    pub exact_fraction: f64,
}

/// E5: empirical verification of Theorem 2 (Graham's bound) — random rigid
/// workloads plus the tightness family, swept over cluster sizes.
pub fn graham_experiment(machines_list: &[u32], seeds_per_m: u64, jobs: usize) -> Vec<GrahamRow> {
    graham_experiment_seeded(
        ExperimentRunner::parallel(),
        machines_list,
        seeds_per_m,
        jobs,
        0,
    )
}

/// [`graham_experiment`] with an explicit [`ExperimentRunner`] and base
/// seed: machine `m`, repetition `i` draws its workload from seed
/// `base_seed + i`; rows are identical in either runner mode (one cell per
/// machine size).
pub fn graham_experiment_seeded(
    runner: ExperimentRunner,
    machines_list: &[u32],
    seeds_per_m: u64,
    jobs: usize,
    base_seed: u64,
) -> Vec<GrahamRow> {
    runner.map(machines_list, |&m| {
        let harness = RatioHarness::new();
        let mut worst: f64 = 1.0;
        let mut sum = 0.0;
        let mut exact = 0usize;
        for s in 0..seeds_per_m {
            let seed = base_seed + s;
            let inst = UniformWorkload::for_cluster(m, jobs).instance(seed);
            let measurement = harness.measure(&Lsrc::new(), &inst);
            worst = worst.max(measurement.ratio);
            sum += measurement.ratio;
            if measurement.reference_kind == ReferenceKind::Optimal {
                exact += 1;
            }
        }
        let adv = graham_tight_instance(m);
        let tight = Lsrc::new().makespan(&adv.instance).ticks() as f64
            / adv.optimal_makespan.ticks() as f64;
        GrahamRow {
            machines: m,
            instances: seeds_per_m as usize,
            worst_ratio: worst,
            mean_ratio: sum / seeds_per_m as f64,
            tight_family_ratio: tight,
            bound: graham_bound(m),
            exact_fraction: exact as f64 / seeds_per_m as f64,
        }
    })
}

/// Render the Graham experiment as a [`Table`].
pub fn graham_table(rows: &[GrahamRow]) -> Table {
    let mut t = Table::new(
        "E5 / Theorem 2 — Graham bound for LSRC without reservations",
        &[
            "m",
            "instances",
            "worst ratio",
            "mean ratio",
            "tight family",
            "bound 2-1/m",
            "exact refs",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.machines.to_string(),
            r.instances.to_string(),
            fmt_f64(r.worst_ratio),
            fmt_f64(r.mean_ratio),
            fmt_f64(r.tight_family_ratio),
            fmt_f64(r.bound),
            fmt_f64(r.exact_fraction),
        ]);
    }
    t
}

/// One row of the FCFS-degradation experiment (E6).
#[derive(Debug, Clone, Serialize)]
pub struct FcfsRow {
    /// Cluster size.
    pub machines: u32,
    /// Number of alternating rounds in the adversarial family.
    pub rounds: u32,
    /// FCFS makespan.
    pub fcfs: u64,
    /// Conservative backfilling makespan.
    pub conservative: u64,
    /// EASY backfilling makespan.
    pub easy: u64,
    /// LSRC makespan.
    pub lsrc: u64,
    /// Constructive optimal upper bound.
    pub optimal_upper: u64,
    /// FCFS / LSRC ratio.
    pub fcfs_over_lsrc: f64,
}

/// E6: the FCFS head-of-line-blocking family — FCFS degrades linearly with the
/// number of rounds while LSRC stays near the optimum.
pub fn fcfs_ratio_experiment(machines_list: &[u32], long_duration: u64) -> Vec<FcfsRow> {
    machines_list
        .iter()
        .map(|&m| {
            let rounds = m / 2;
            let adv = fcfs_pathological_instance(m, rounds, long_duration);
            let fcfs = Fcfs::new().makespan(&adv.instance).ticks();
            let conservative = ConservativeBackfilling::new()
                .makespan(&adv.instance)
                .ticks();
            let easy = EasyBackfilling::new().makespan(&adv.instance).ticks();
            let lsrc = Lsrc::new().makespan(&adv.instance).ticks();
            FcfsRow {
                machines: m,
                rounds,
                fcfs,
                conservative,
                easy,
                lsrc,
                optimal_upper: adv.optimal_makespan.ticks(),
                fcfs_over_lsrc: fcfs as f64 / lsrc as f64,
            }
        })
        .collect()
}

/// Render the FCFS experiment as a [`Table`].
pub fn fcfs_table(rows: &[FcfsRow]) -> Table {
    let mut t = Table::new(
        "E6 / §2.2 — FCFS has no constant guarantee (head-of-line blocking family)",
        &[
            "m",
            "rounds",
            "FCFS",
            "conservative",
            "EASY",
            "LSRC",
            "OPT (ub)",
            "FCFS/LSRC",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.machines.to_string(),
            r.rounds.to_string(),
            r.fcfs.to_string(),
            r.conservative.to_string(),
            r.easy.to_string(),
            r.lsrc.to_string(),
            r.optimal_upper.to_string(),
            fmt_f64(r.fcfs_over_lsrc),
        ]);
    }
    t
}

/// Per-algorithm sample accumulator: `(name, [(cmax, cmax/lb, util)])`.
type AlgoSamples = Vec<(String, Vec<(f64, f64, f64)>)>;

/// One row of the average-case comparison (E7).
#[derive(Debug, Clone, Serialize)]
pub struct AverageCaseRow {
    /// Cluster size.
    pub machines: u32,
    /// α restriction applied to the reservations (1 = no reservations).
    pub alpha: f64,
    /// Scheduler name.
    pub algorithm: String,
    /// Mean makespan over the seeds.
    pub mean_makespan: f64,
    /// Mean ratio to the certified lower bound.
    pub mean_ratio_to_lb: f64,
    /// Worst ratio to the certified lower bound.
    pub worst_ratio_to_lb: f64,
    /// Mean utilization.
    pub mean_utilization: f64,
}

/// E7: average-case comparison of every scheduler on Feitelson-style
/// workloads, with α-restricted reservations swept over α.
pub fn average_case_experiment(
    machines_list: &[u32],
    alphas: &[(u64, u64)],
    jobs: usize,
    seeds: u64,
) -> Vec<AverageCaseRow> {
    average_case_experiment_seeded(
        ExperimentRunner::parallel(),
        machines_list,
        alphas,
        jobs,
        seeds,
        0,
    )
}

/// [`average_case_experiment`] with an explicit [`ExperimentRunner`] and
/// base seed: repetition `i` of every `(machines, α)` cell draws its
/// workload from seed `base_seed + i`; rows are identical in either runner
/// mode (one cell per `(machines, α)` pair, folded in pair order).
pub fn average_case_experiment_seeded(
    runner: ExperimentRunner,
    machines_list: &[u32],
    alphas: &[(u64, u64)],
    jobs: usize,
    seeds: u64,
    base_seed: u64,
) -> Vec<AverageCaseRow> {
    let combos: Vec<(u32, (u64, u64))> = machines_list
        .iter()
        .flat_map(|&m| alphas.iter().map(move |&a| (m, a)))
        .collect();
    let cells: Vec<Vec<AverageCaseRow>> = runner.map(&combos, |&(m, (num, denom))| {
        let alpha = Alpha::new(num, denom).expect("valid alpha parameters");
        let mut per_algo: AlgoSamples = resa_algos::all_schedulers()
            .iter()
            .map(|s| (s.name(), Vec::new()))
            .collect();
        for s in 0..seeds {
            let seed = base_seed + s;
            let workload = FeitelsonWorkload::for_cluster(m, jobs);
            let jobs_vec = workload.generate(seed);
            let inst = if alpha == Alpha::ONE {
                ResaInstance::new(m, jobs_vec, Vec::new()).expect("valid")
            } else {
                AlphaReservations {
                    machines: m,
                    alpha,
                    count: 4,
                    horizon: 2000,
                    max_duration: 300,
                }
                .instance(jobs_vec, seed)
            };
            let lb = lower_bound(&inst)
                .expect("finite lower bound")
                .ticks()
                .max(1) as f64;
            for (i, s) in resa_algos::all_schedulers().iter().enumerate() {
                let sched = s.schedule(&inst);
                let cmax = sched.makespan(&inst).ticks() as f64;
                let util = sched.utilization(&inst);
                per_algo[i].1.push((cmax, cmax / lb, util));
            }
        }
        per_algo
            .into_iter()
            .map(|(name, samples)| {
                let n = samples.len() as f64;
                AverageCaseRow {
                    machines: m,
                    alpha: alpha.as_f64(),
                    algorithm: name,
                    mean_makespan: samples.iter().map(|s| s.0).sum::<f64>() / n,
                    mean_ratio_to_lb: samples.iter().map(|s| s.1).sum::<f64>() / n,
                    worst_ratio_to_lb: samples.iter().map(|s| s.1).fold(0.0, f64::max),
                    mean_utilization: samples.iter().map(|s| s.2).sum::<f64>() / n,
                }
            })
            .collect::<Vec<_>>()
    });
    cells.into_iter().flatten().collect()
}

/// Render the average-case experiment as a [`Table`].
pub fn average_case_table(rows: &[AverageCaseRow]) -> Table {
    let mut t = Table::new(
        "E7 — average-case comparison on Feitelson-style workloads with α-restricted reservations",
        &[
            "m",
            "alpha",
            "algorithm",
            "mean Cmax",
            "mean Cmax/LB",
            "worst Cmax/LB",
            "mean util",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.machines.to_string(),
            fmt_f64(r.alpha),
            r.algorithm.clone(),
            fmt_f64(r.mean_makespan),
            fmt_f64(r.mean_ratio_to_lb),
            fmt_f64(r.worst_ratio_to_lb),
            fmt_f64(r.mean_utilization),
        ]);
    }
    t
}

/// Node budget of the per-cell exact-solver throughput probe in the E8/E9
/// sweeps: large enough for a stable nodes/sec estimate, small enough to
/// stay a negligible fraction of a cell.
const EXACT_PROBE_BUDGET: u64 = 20_000;

/// One row of the priority-order ablation (E8).
#[derive(Debug, Clone, Serialize)]
pub struct PriorityRow {
    /// List order used by LSRC.
    pub order: String,
    /// Mean makespan ratio to the certified lower bound.
    pub mean_ratio_to_lb: f64,
    /// Worst makespan ratio to the certified lower bound.
    pub worst_ratio_to_lb: f64,
    /// Mean makespan ratio relative to LSRC(submission) on the same instance.
    pub mean_vs_submission: f64,
    /// Exact-solver throughput: one budget-bounded probe on the sweep's
    /// first instance, run sequentially *outside* the parallel fan-out so
    /// the wall-clock rate is not diluted by core contention and does not
    /// depend on the runner mode. Identical across the orders of a sweep
    /// (the probe is order-independent).
    pub exact_nodes_per_sec: f64,
    /// Deepest branch-and-bound level the probe reached.
    pub exact_peak_depth: usize,
}

/// E8: ablation of the list order used by LSRC (the improvement direction the
/// paper's conclusion suggests).
pub fn priority_ablation_experiment(
    machines: u32,
    jobs: usize,
    seeds: u64,
    alpha: (u64, u64),
) -> Vec<PriorityRow> {
    priority_ablation_experiment_with(ExperimentRunner::parallel(), machines, jobs, seeds, alpha)
}

/// [`priority_ablation_experiment`] with an explicit [`ExperimentRunner`]
/// (sequential or parallel — identical rows either way: each seed is one
/// self-contained cell and the aggregation folds the cells in seed order).
pub fn priority_ablation_experiment_with(
    runner: ExperimentRunner,
    machines: u32,
    jobs: usize,
    seeds: u64,
    alpha: (u64, u64),
) -> Vec<PriorityRow> {
    priority_ablation_experiment_seeded(runner, machines, jobs, seeds, alpha, 0)
}

/// [`priority_ablation_experiment_with`] with an explicit base seed:
/// repetition `i` draws its instance from seed `base_seed + i`.
pub fn priority_ablation_experiment_seeded(
    runner: ExperimentRunner,
    machines: u32,
    jobs: usize,
    seeds: u64,
    alpha: (u64, u64),
    base_seed: u64,
) -> Vec<PriorityRow> {
    let alpha = Alpha::new(alpha.0, alpha.1).expect("valid alpha");
    let orders = ListOrder::DETERMINISTIC;
    let seed_list: Vec<u64> = (base_seed..base_seed + seeds).collect();
    let make_instance = |seed: u64| {
        let jobs_vec = FeitelsonWorkload::for_cluster(machines, jobs).generate(seed);
        AlphaReservations {
            machines,
            alpha,
            count: 4,
            horizon: 2000,
            max_duration: 300,
        }
        .instance(jobs_vec, seed)
    };
    // One cell per seed: that instance's per-order samples
    // `(ratio to lower bound, ratio to LSRC(submission))`.
    let cells: Vec<Vec<(f64, f64)>> = runner.map_seeds(&seed_list, |seed| {
        let inst = make_instance(seed);
        let lb = lower_bound(&inst)
            .expect("finite lower bound")
            .ticks()
            .max(1) as f64;
        let submission = Lsrc::new().makespan(&inst).ticks() as f64;
        orders
            .iter()
            .map(|&order| {
                let cmax = Lsrc::with_order(order).makespan(&inst).ticks() as f64;
                (cmax / lb, cmax / submission)
            })
            .collect()
    });
    // Exact throughput probe: sequential and outside the fan-out, so the
    // wall-clock nodes/sec is measured solo (see the row field docs).
    let probe = seed_list.first().map(|&seed| {
        RatioHarness {
            exact_node_budget: EXACT_PROBE_BUDGET,
            ..RatioHarness::default()
        }
        .probe_exact(&make_instance(seed))
    });
    let exact_nodes_per_sec = probe.map_or(0.0, |p| p.nodes_per_sec);
    let exact_peak_depth = probe.map_or(0, |p| p.peak_depth);
    let n = cells.len() as f64;
    orders
        .iter()
        .enumerate()
        .map(|(i, order)| PriorityRow {
            order: order.to_string(),
            mean_ratio_to_lb: cells.iter().map(|c| c[i].0).sum::<f64>() / n,
            worst_ratio_to_lb: cells.iter().map(|c| c[i].0).fold(0.0, f64::max),
            mean_vs_submission: cells.iter().map(|c| c[i].1).sum::<f64>() / n,
            exact_nodes_per_sec,
            exact_peak_depth,
        })
        .collect()
}

/// Render the ablation as a [`Table`].
pub fn priority_table(rows: &[PriorityRow]) -> Table {
    let mut t = Table::new(
        "E8 — LSRC list-order ablation (conclusion of the paper)",
        &[
            "order",
            "mean Cmax/LB",
            "worst Cmax/LB",
            "vs submission",
            "exact nodes/s",
            "exact depth",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.order.clone(),
            fmt_f64(r.mean_ratio_to_lb),
            fmt_f64(r.worst_ratio_to_lb),
            fmt_f64(r.mean_vs_submission),
            format!("{:.0}", r.exact_nodes_per_sec),
            r.exact_peak_depth.to_string(),
        ]);
    }
    t
}

/// One row of the on-line batch experiment (E9).
#[derive(Debug, Clone, Serialize)]
pub struct OnlineRow {
    /// On-line policy or wrapper.
    pub policy: String,
    /// Mean makespan over the seeds.
    pub mean_makespan: f64,
    /// Mean makespan normalized by the clairvoyant off-line LSRC makespan.
    pub mean_vs_offline: f64,
    /// Worst makespan normalized by the clairvoyant off-line LSRC makespan.
    pub worst_vs_offline: f64,
    /// Mean waiting time.
    pub mean_wait: f64,
    /// Exact-solver throughput: one budget-bounded probe on the sweep's
    /// first instance, run sequentially *outside* the parallel fan-out so
    /// the wall-clock rate is not diluted by core contention and does not
    /// depend on the runner mode. Identical across the policies of a sweep
    /// (the probe is policy-independent).
    pub exact_nodes_per_sec: f64,
    /// Deepest branch-and-bound level the probe reached.
    pub exact_peak_depth: usize,
}

/// E9: on-line policies and the batch-doubling wrapper against the clairvoyant
/// off-line LSRC (the §2.1 argument: the batched on-line loss stays within a
/// factor 2 of the off-line *guarantee*).
pub fn online_batch_experiment(
    machines: u32,
    jobs: usize,
    mean_interarrival: u64,
    seeds: u64,
) -> Vec<OnlineRow> {
    online_batch_experiment_with(
        ExperimentRunner::parallel(),
        machines,
        jobs,
        mean_interarrival,
        seeds,
    )
}

/// Names of the four policies/wrappers measured by the E9 experiment.
const ONLINE_POLICIES: [&str; 4] = [
    "FCFS (online)",
    "EASY (online)",
    "greedy-LSRC (online)",
    "batch(LSRC) wrapper",
];

/// [`online_batch_experiment`] with an explicit [`ExperimentRunner`]: every
/// seed is one self-contained simulation cell (its own instance, its own RNG
/// stream), so the parallel and sequential runners produce identical rows.
pub fn online_batch_experiment_with(
    runner: ExperimentRunner,
    machines: u32,
    jobs: usize,
    mean_interarrival: u64,
    seeds: u64,
) -> Vec<OnlineRow> {
    online_batch_experiment_seeded(runner, machines, jobs, mean_interarrival, seeds, 0)
}

/// [`online_batch_experiment_with`] with an explicit base seed: repetition
/// `i` draws its instance from seed `base_seed + i`.
pub fn online_batch_experiment_seeded(
    runner: ExperimentRunner,
    machines: u32,
    jobs: usize,
    mean_interarrival: u64,
    seeds: u64,
    base_seed: u64,
) -> Vec<OnlineRow> {
    let seed_list: Vec<u64> = (base_seed..base_seed + seeds).collect();
    let make_instance = |seed: u64| {
        FeitelsonWorkload::for_cluster(machines, jobs)
            .with_arrivals(mean_interarrival)
            .instance(seed)
    };
    // Per seed, per policy: (makespan, makespan / offline, mean wait).
    let cells: Vec<[(f64, f64, f64); 4]> = runner.map_seeds(&seed_list, |seed| {
        let inst = make_instance(seed);
        // Clairvoyant off-line reference: LSRC that knows all jobs in advance
        // (still respecting release dates).
        let offline = Lsrc::new().schedule(&inst).makespan(&inst).ticks().max(1) as f64;
        let sim = Simulator::new(inst.clone());
        let batched = BatchScheduler::new(Lsrc::new()).schedule(&inst);
        let sample = |m: &SimMetrics| {
            (
                m.makespan.ticks() as f64,
                m.makespan.ticks() as f64 / offline,
                m.mean_wait,
            )
        };
        [
            sample(&sim.run(&FcfsPolicy).metrics),
            sample(&sim.run(&EasyPolicy).metrics),
            sample(&sim.run(&GreedyPolicy).metrics),
            sample(&SimMetrics::from_schedule(&inst, &batched)),
        ]
    });
    // Exact throughput probe: sequential and outside the fan-out, so the
    // wall-clock nodes/sec is measured solo (see the row field docs).
    let probe = seed_list.first().map(|&seed| {
        RatioHarness {
            exact_node_budget: EXACT_PROBE_BUDGET,
            ..RatioHarness::default()
        }
        .probe_exact(&make_instance(seed))
    });
    let exact_nodes_per_sec = probe.map_or(0.0, |p| p.nodes_per_sec);
    let exact_peak_depth = probe.map_or(0, |p| p.peak_depth);
    let n = cells.len() as f64;
    ONLINE_POLICIES
        .iter()
        .enumerate()
        .map(|(i, policy)| OnlineRow {
            policy: policy.to_string(),
            mean_makespan: cells.iter().map(|c| c[i].0).sum::<f64>() / n,
            mean_vs_offline: cells.iter().map(|c| c[i].1).sum::<f64>() / n,
            worst_vs_offline: cells.iter().map(|c| c[i].1).fold(0.0, f64::max),
            mean_wait: cells.iter().map(|c| c[i].2).sum::<f64>() / n,
            exact_nodes_per_sec,
            exact_peak_depth,
        })
        .collect()
}

/// Render the on-line experiment as a [`Table`].
pub fn online_table(rows: &[OnlineRow]) -> Table {
    let mut t = Table::new(
        "E9 / §2.1 — on-line policies and the batch-doubling wrapper vs clairvoyant off-line LSRC",
        &[
            "policy",
            "mean Cmax",
            "mean vs offline",
            "worst vs offline",
            "mean wait",
            "exact nodes/s",
            "exact depth",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.policy.clone(),
            fmt_f64(r.mean_makespan),
            fmt_f64(r.mean_vs_offline),
            fmt_f64(r.worst_vs_offline),
            fmt_f64(r.mean_wait),
            format!("{:.0}", r.exact_nodes_per_sec),
            r.exact_peak_depth.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graham_experiment_respects_bound() {
        let rows = graham_experiment(&[3, 4], 4, 6);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            // Ratios against the optimum (exact references) never exceed the
            // bound; lower-bound references can only inflate the ratio, so we
            // only assert the bound when every reference was exact.
            if (r.exact_fraction - 1.0).abs() < 1e-9 {
                assert!(r.worst_ratio <= r.bound + 1e-9);
            }
            assert!((r.tight_family_ratio - r.bound).abs() < 1e-9);
            assert!(r.mean_ratio >= 1.0 - 1e-9);
        }
        assert!(!graham_table(&rows).is_empty());
    }

    #[test]
    fn fcfs_experiment_shows_degradation() {
        let rows = fcfs_ratio_experiment(&[8, 16], 40);
        assert_eq!(rows.len(), 2);
        assert!(rows[1].fcfs_over_lsrc > rows[0].fcfs_over_lsrc);
        assert!(rows.iter().all(|r| r.lsrc <= r.fcfs));
        assert!(!fcfs_table(&rows).is_empty());
    }

    #[test]
    fn average_case_smoke() {
        let rows = average_case_experiment(&[16], &[(1, 2), (1, 1)], 12, 2);
        // 2 alphas × all schedulers.
        assert_eq!(rows.len(), 2 * resa_algos::all_schedulers().len());
        assert!(rows.iter().all(|r| r.mean_ratio_to_lb >= 1.0 - 1e-9));
        assert!(rows.iter().all(|r| r.mean_utilization <= 1.0 + 1e-9));
        assert!(!average_case_table(&rows).is_empty());
    }

    #[test]
    fn priority_ablation_smoke() {
        let rows = priority_ablation_experiment(16, 10, 2, (1, 2));
        assert_eq!(rows.len(), ListOrder::DETERMINISTIC.len());
        let submission = rows.iter().find(|r| r.order == "submission").unwrap();
        assert!((submission.mean_vs_submission - 1.0).abs() < 1e-9);
        // The exact-solver throughput probe is visible in every row.
        assert!(rows.iter().all(|r| r.exact_nodes_per_sec > 0.0));
        assert!(rows.iter().all(|r| r.exact_peak_depth <= 10));
        assert!(!priority_table(&rows).is_empty());
    }

    #[test]
    fn online_experiment_smoke() {
        let rows = online_batch_experiment(16, 15, 5, 2);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                r.mean_vs_offline.is_finite() && r.mean_vs_offline > 0.0,
                "{}",
                r.policy
            );
        }
        // The on-line greedy policy is exactly the off-line LSRC (it never
        // uses future knowledge), so its normalized makespan is 1.
        let greedy = rows
            .iter()
            .find(|r| r.policy.starts_with("greedy"))
            .unwrap();
        assert!((greedy.worst_vs_offline - 1.0).abs() < 1e-9);
        // The batch wrapper stays within twice the off-line guarantee
        // (2·ρ with ρ = 2 − 1/m < 2) of the clairvoyant off-line makespan.
        let batch = rows.iter().find(|r| r.policy.starts_with("batch")).unwrap();
        assert!(batch.worst_vs_offline <= 4.0 + 1e-9);
        assert!(rows.iter().all(|r| r.exact_nodes_per_sec > 0.0));
        assert!(!online_table(&rows).is_empty());
    }
}
