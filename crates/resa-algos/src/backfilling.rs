//! Back-filling variants of FCFS.
//!
//! * [`ConservativeBackfilling`] — every job receives, in submission order,
//!   the earliest start time that does not delay any previously considered
//!   job (§2.2: "conservative back-filling considers all tasks, and greedily
//!   schedules each task at the earliest possible date, without delaying any
//!   previously scheduled task").
//! * [`EasyBackfilling`] — the EASY (aggressive) variant: only the job at the
//!   head of the queue holds a guaranteed start time; a later job may jump the
//!   queue if starting it now does not delay that guaranteed start. Admission
//!   is decided by O(log B) scalar checks against the spare-capacity API;
//!   [`EasyBackfillingReference`] keeps the classical probing formulation as
//!   the (property-tested) equivalence oracle and bench baseline.
//!
//! The paper notes that the *most* aggressive variant — any job may delay any
//! other as long as it starts earlier — is exactly LSRC
//! (see [`crate::list_scheduling::Lsrc`]).

use crate::traits::Scheduler;
use resa_core::prelude::*;
use std::collections::BTreeSet;

/// Conservative backfilling: earliest fit in submission order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConservativeBackfilling;

impl ConservativeBackfilling {
    /// Create a conservative backfilling scheduler.
    pub fn new() -> Self {
        ConservativeBackfilling
    }

    /// Run conservative backfilling against an explicit availability
    /// substrate (naive profile or indexed timeline).
    pub fn schedule_with<C: CapacityQuery>(
        &self,
        instance: &ResaInstance,
        mut profile: C,
    ) -> Schedule {
        let mut schedule = Schedule::new();
        for job in instance.jobs() {
            let start = profile
                .earliest_fit(job.width, job.duration, job.release)
                .expect("feasible instances always admit a fit");
            profile
                .reserve(start, job.duration, job.width)
                .expect("earliest_fit guarantees capacity");
            schedule.place(job.id, start);
        }
        schedule
    }
}

impl Scheduler for ConservativeBackfilling {
    fn name(&self) -> String {
        "conservative-backfilling".to_string()
    }

    fn schedule(&self, instance: &ResaInstance) -> Schedule {
        self.schedule_with(instance, instance.timeline())
    }
}

/// Counters exposed by [`EasyBackfilling::schedule_with_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EasyStats {
    /// Decision points taken (clock instants at which the queue was scanned).
    pub decision_points: u64,
    /// Jobs started by jumping the queue (not as the head).
    pub backfills: u64,
}

/// EASY (aggressive) backfilling.
///
/// Event-driven formulation: at every decision point the head of the waiting
/// queue is started if it fits now; otherwise its *shadow time* (the earliest
/// time at which it will fit given the jobs currently running and the
/// reservations) is computed, and any other queued job is allowed to start now
/// provided doing so does not push the head job past its shadow time.
///
/// This implementation admits backfill candidates with O(log B) scalar
/// checks against the spare-capacity API instead of the classical tentative
/// *reserve → recompute shadow → release* round trip (kept as
/// [`EasyBackfillingReference`], which is property-tested to produce
/// identical schedules). Once per decision point it computes the head's
/// shadow time and the spare ("extra") capacity left over the head's shadow
/// window; a candidate that finishes before the shadow, or that is narrower
/// than the spare capacity, is admitted without any further query, and the
/// remaining cases need exactly one more range-minimum. The candidate delays
/// the head iff its execution overlaps the head's shadow window
/// `[shadow, shadow + p_head)` with less than `q_head + q_cand` processors
/// free there — reserving it can only push the shadow *later*, so "the
/// shadow does not move" and "the head still fits at the shadow" are the
/// same condition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EasyBackfilling;

impl EasyBackfilling {
    /// Create an EASY backfilling scheduler.
    pub fn new() -> Self {
        EasyBackfilling
    }

    /// Run EASY backfilling against an explicit availability substrate
    /// (naive profile or indexed timeline).
    pub fn schedule_with<C: CapacityQuery>(&self, instance: &ResaInstance, profile: C) -> Schedule {
        self.schedule_with_stats(instance, profile).0
    }

    /// [`Self::schedule_with`] plus decision-loop counters, used by the
    /// regression tests and the decision-point bench.
    pub fn schedule_with_stats<C: CapacityQuery>(
        &self,
        instance: &ResaInstance,
        mut profile: C,
    ) -> (Schedule, EasyStats) {
        let jobs = instance.jobs();
        let mut schedule = Schedule::new();
        let mut stats = EasyStats::default();
        let n = jobs.len();
        if n == 0 {
            return (schedule, stats);
        }
        // Arrival-order queue with O(1) removal; job i sits at index i.
        let mut queue = WaitList::with_capacity(n);
        for i in 0..n {
            queue.push_back(i);
        }
        // Sorted distinct release instants with a monotone cursor: every
        // release still ahead of the clock belongs to a job still queued
        // (jobs cannot start before their release), so this is exactly the
        // set of future arrival events.
        let mut releases: Vec<Time> = jobs.iter().map(|j| j.release).collect();
        releases.sort_unstable();
        releases.dedup();
        let mut rel_cursor = 0usize;
        let mut now = releases[0];

        loop {
            stats.decision_points += 1;
            // 1. Start the head of the queue (and successive heads) while
            //    they fit.
            while let Some(h) = queue.front() {
                let head = &jobs[h];
                if head.release <= now && profile.min_capacity_in(now, head.duration) >= head.width
                {
                    profile
                        .reserve(now, head.duration, head.width)
                        .expect("capacity just checked");
                    schedule.place(head.id, now);
                    queue.remove(h);
                } else {
                    break;
                }
            }
            let Some(h) = queue.front() else { break };
            let head = jobs[h];
            // 2. The head does not fit now: its shadow time and the spare
            //    capacity over its shadow window, once per decision point.
            let shadow = profile
                .earliest_fit(head.width, head.duration, now.max(head.release))
                .expect("feasible instances always admit a fit");
            let mut guard = ShadowGuard::new(shadow, head.width, head.duration, |s, d| {
                profile.spare_capacity_until(s, s.saturating_add(d))
            });
            // Capacity free at this very instant: an O(1) pre-filter for the
            // fits-now test (min over the window can only be lower).
            let mut free_now = profile.capacity_at(now);
            // Whether a released candidate remains queued after the pass —
            // only then can a capacity change before the shadow matter.
            let mut released_candidate_left = false;
            // 3. Backfill with scalar checks; accepted candidates are
            //    reserved directly (acceptance is decided before mutating, so
            //    nothing is ever rolled back).
            let mut cursor = queue.next_of(h);
            while let Some(i) = cursor {
                cursor = queue.next_of(i);
                let job = jobs[i];
                if job.release > now {
                    continue;
                }
                if job.width > free_now || profile.min_capacity_in(now, job.duration) < job.width {
                    released_candidate_left = true;
                    continue;
                }
                let no_delay = guard.admits(now, job.width, job.duration, |s, d| {
                    profile.min_capacity_in(s, d)
                });
                if !no_delay {
                    released_candidate_left = true;
                    continue;
                }
                profile
                    .reserve(now, job.duration, job.width)
                    .expect("capacity just checked");
                schedule.place(job.id, now);
                queue.remove(i);
                stats.backfills += 1;
                free_now -= job.width;
                guard.on_admit(now, job.duration, |s, d| profile.min_capacity_in(s, d));
            }
            // 4. Jump to the next actionable instant. The head cannot start
            //    before its shadow and new candidates appear only at release
            //    instants; capacity changes in between matter only while a
            //    released candidate is still waiting (a refused candidate can
            //    start to fit only where the availability function rises).
            while rel_cursor < releases.len() && releases[rel_cursor] <= now {
                rel_cursor += 1;
            }
            let mut next = shadow;
            if let Some(&r) = releases.get(rel_cursor) {
                next = next.min(r);
            }
            if released_candidate_left {
                if let Some(c) = profile.next_change_after(now) {
                    next = next.min(c);
                }
            }
            debug_assert!(next > now, "the decision clock must advance");
            now = next;
        }
        (schedule, stats)
    }
}

impl Scheduler for EasyBackfilling {
    fn name(&self) -> String {
        "EASY-backfilling".to_string()
    }

    fn schedule(&self, instance: &ResaInstance) -> Schedule {
        self.schedule_with(instance, instance.timeline())
    }
}

/// The classical probing formulation of EASY backfilling, kept verbatim as
/// the equivalence oracle for [`EasyBackfilling`] and as the baseline of the
/// decision-point bench.
///
/// Per candidate it performs a tentative `reserve`, recomputes the head's
/// shadow with a full `earliest_fit`, and `release`s on refusal — three
/// substrate mutations/queries where the optimized loop needs at most one
/// range-minimum — and it wakes at every completion and profile breakpoint
/// even when no queued job could possibly start there.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EasyBackfillingReference;

impl EasyBackfillingReference {
    /// Create the reference EASY backfilling scheduler.
    pub fn new() -> Self {
        EasyBackfillingReference
    }

    /// Run the reference formulation against an explicit substrate.
    pub fn schedule_with<C: CapacityQuery>(
        &self,
        instance: &ResaInstance,
        mut profile: C,
    ) -> Schedule {
        let jobs = instance.jobs();
        let mut schedule = Schedule::new();
        let mut queue: Vec<&Job> = jobs.iter().collect();
        if queue.is_empty() {
            return schedule;
        }
        let mut now = jobs.iter().map(|j| j.release).min().unwrap_or(Time::ZERO);
        let mut completions: BTreeSet<Time> = BTreeSet::new();
        let releases: BTreeSet<Time> = jobs.iter().map(|j| j.release).collect();

        while !queue.is_empty() {
            // 1. Start the head of the queue (and successive heads) while they fit.
            while let Some(&head) = queue.first() {
                if head.release <= now && profile.min_capacity_in(now, head.duration) >= head.width
                {
                    profile
                        .reserve(now, head.duration, head.width)
                        .expect("capacity just checked");
                    schedule.place(head.id, now);
                    completions.insert(now + head.duration);
                    queue.remove(0);
                } else {
                    break;
                }
            }
            if queue.is_empty() {
                break;
            }
            // 2. The head does not fit now: compute its shadow start on a
            //    snapshot of the current profile.
            let head = queue[0];
            let shadow = profile
                .earliest_fit(head.width, head.duration, now.max(head.release))
                .expect("feasible instances always admit a fit");
            // 3. Backfill: start any later job that fits now without delaying
            //    the shadow start of the head job.
            let mut i = 1;
            while i < queue.len() {
                let job = queue[i];
                let fits_now =
                    job.release <= now && profile.min_capacity_in(now, job.duration) >= job.width;
                if fits_now {
                    // Tentatively reserve and re-check the head's shadow time.
                    profile
                        .reserve(now, job.duration, job.width)
                        .expect("capacity just checked");
                    let new_shadow = profile
                        .earliest_fit(head.width, head.duration, now.max(head.release))
                        .expect("feasible instances always admit a fit");
                    if new_shadow <= shadow {
                        schedule.place(job.id, now);
                        completions.insert(now + job.duration);
                        queue.remove(i);
                        continue; // same index now holds the next job
                    } else {
                        profile
                            .release(now, job.duration, job.width)
                            .expect("undoing a reservation we just made");
                    }
                }
                i += 1;
            }
            // 4. Advance the clock, one event at a time.
            let next_completion = completions
                .range((std::ops::Bound::Excluded(now), std::ops::Bound::Unbounded))
                .next()
                .copied();
            let next_release = releases
                .range((std::ops::Bound::Excluded(now), std::ops::Bound::Unbounded))
                .next()
                .copied();
            let next_profile_change = profile.next_change_after(now);
            let candidates = [
                next_completion,
                next_release,
                next_profile_change,
                Some(shadow),
            ];
            let next = candidates.into_iter().flatten().filter(|&t| t > now).min();
            match next {
                Some(t) => now = t,
                None => now = shadow.max(now + Dur::ONE),
            }
        }
        schedule
    }
}

impl Scheduler for EasyBackfillingReference {
    fn name(&self) -> String {
        "EASY-backfilling-reference".to_string()
    }

    fn schedule(&self, instance: &ResaInstance) -> Schedule {
        self.schedule_with(instance, instance.timeline())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fcfs::Fcfs;
    use crate::list_scheduling::Lsrc;
    use resa_core::instance::ResaInstanceBuilder;

    fn blocked_head_instance() -> ResaInstance {
        // J0 (3 wide) runs first; J1 (4 wide) blocks; J2 (1 wide, short) can
        // backfill beside J0 without delaying J1; J3 (1 wide, long) would
        // delay J1 and must not be backfilled by EASY.
        ResaInstanceBuilder::new(4)
            .job(3, 4u64) // J0
            .job(4, 2u64) // J1 (head once J0 is running)
            .job(1, 4u64) // J2: finishes exactly when J0 does → no delay
            .job(1, 6u64) // J3: would push J1 from t=4 to t=6
            .build()
            .unwrap()
    }

    #[test]
    fn conservative_backfills_without_delaying() {
        let inst = blocked_head_instance();
        let s = ConservativeBackfilling::new().schedule(&inst);
        assert!(s.is_valid(&inst));
        assert_eq!(s.start_of(JobId(0)), Some(Time(0)));
        // J1's earliest fit given J0 is t=4.
        assert_eq!(s.start_of(JobId(1)), Some(Time(4)));
        // J2 fits at 0 beside J0 without moving J1 (profile insertion).
        assert_eq!(s.start_of(JobId(2)), Some(Time(0)));
        // J3 (length 6) cannot fit at 0 (it would collide with J1 at [4,6)),
        // so conservative places it at its earliest true fit: t=6.
        assert_eq!(s.start_of(JobId(3)), Some(Time(6)));
    }

    #[test]
    fn easy_backfills_only_when_head_not_delayed() {
        let inst = blocked_head_instance();
        let s = EasyBackfilling::new().schedule(&inst);
        assert!(s.is_valid(&inst));
        assert_eq!(s.start_of(JobId(0)), Some(Time(0)));
        assert_eq!(
            s.start_of(JobId(2)),
            Some(Time(0)),
            "harmless backfill allowed"
        );
        assert_eq!(s.start_of(JobId(1)), Some(Time(4)), "head not delayed");
        assert!(
            s.start_of(JobId(3)).unwrap() >= Time(4),
            "delaying backfill refused"
        );
    }

    #[test]
    fn all_policies_feasible_with_reservations() {
        let inst = ResaInstanceBuilder::new(8)
            .job(5, 6u64)
            .job(3, 2u64)
            .job(8, 1u64)
            .job(2, 9u64)
            .job(1, 3u64)
            .reservation(4, 5u64, 3u64)
            .reservation(2, 3u64, 12u64)
            .build()
            .unwrap();
        let schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(Fcfs::new()),
            Box::new(ConservativeBackfilling::new()),
            Box::new(EasyBackfilling::new()),
            Box::new(Lsrc::new()),
        ];
        let mut makespans = Vec::new();
        for s in &schedulers {
            let sched = s.schedule(&inst);
            assert!(
                sched.is_valid(&inst),
                "{} produced invalid schedule",
                s.name()
            );
            assert_eq!(sched.len(), inst.n_jobs());
            makespans.push(sched.makespan(&inst));
        }
        // Aggressiveness ordering usually (not always) helps; at minimum the
        // most aggressive policy is never worse than strict FCFS here.
        assert!(makespans[3] <= makespans[0]);
    }

    #[test]
    fn conservative_equals_fcfs_on_sequential_chain() {
        // When every job needs the whole machine there is nothing to backfill.
        let inst = ResaInstanceBuilder::new(4)
            .jobs(3, 4, 2u64)
            .build()
            .unwrap();
        let c = ConservativeBackfilling::new().schedule(&inst);
        let f = Fcfs::new().schedule(&inst);
        assert_eq!(c.makespan(&inst), f.makespan(&inst));
        assert_eq!(c.makespan(&inst), Time(6));
    }

    #[test]
    fn easy_empty_instance() {
        let inst = ResaInstanceBuilder::new(4).build().unwrap();
        assert!(EasyBackfilling::new().schedule(&inst).is_empty());
        assert!(ConservativeBackfilling::new().schedule(&inst).is_empty());
    }

    #[test]
    fn easy_respects_release_dates() {
        let inst = ResaInstanceBuilder::new(2)
            .job_released_at(2, 2u64, 4u64)
            .job(1, 1u64)
            .build()
            .unwrap();
        let s = EasyBackfilling::new().schedule(&inst);
        assert!(s.is_valid(&inst));
        assert_eq!(s.start_of(JobId(0)), Some(Time(4)));
        assert_eq!(s.start_of(JobId(1)), Some(Time(0)));
    }

    /// Regression for the clock-advance fallback: a lone head blocked behind
    /// a comb of reservations used to wake at every one of the ~100
    /// intervening profile breakpoints (stepping event by event, each with a
    /// full queue re-scan); with no released candidate waiting, the loop must
    /// jump straight from the first decision point to the shadow time.
    #[test]
    fn lone_blocked_head_jumps_to_its_shadow() {
        // Width-1 reservations at [2i, 2i+1) for i < 50: a 4-wide job of
        // length 2 first fits at t = 99 (gaps before are 1 tick long).
        let mut b = ResaInstanceBuilder::new(4).job(4, 2u64);
        for i in 0..50u64 {
            b = b.reservation(1, 1u64, 2 * i);
        }
        let inst = b.build().unwrap();
        let (schedule, stats) = EasyBackfilling::new().schedule_with_stats(&inst, inst.timeline());
        assert_eq!(schedule.start_of(JobId(0)), Some(Time(99)));
        assert_eq!(
            stats.decision_points, 2,
            "one decision point to compute the shadow, one to start the head"
        );
        // Schedule-identical with the event-by-event reference.
        assert_eq!(
            schedule,
            EasyBackfillingReference::new().schedule_with(&inst, inst.timeline())
        );
    }

    /// With a released candidate still waiting, the optimized loop must keep
    /// waking at capacity changes (that is where a refused candidate can
    /// start to fit) — and still match the reference schedule-for-schedule.
    #[test]
    fn waiting_candidate_keeps_capacity_change_wakeups() {
        // Head (4 wide) blocked until the staircase clears; a 2-wide
        // candidate of length 3 only starts fitting at t = 4 (a capacity
        // rise), strictly between decision-relevant release instants.
        let inst = ResaInstanceBuilder::new(4)
            .job(4, 2u64) // head, blocked
            .job(2, 3u64) // candidate, fits from t = 4
            .reservation(3, 4u64, 0u64) // cap 1 on [0, 4)
            .reservation(1, 6u64, 4u64) // cap 3 on [4, 10)
            .reservation(1, 2u64, 10u64) // cap 3 on [10, 12)
            .build()
            .unwrap();
        let easy = EasyBackfilling::new().schedule_with(&inst, inst.timeline());
        let reference = EasyBackfillingReference::new().schedule_with(&inst, inst.timeline());
        assert_eq!(easy, reference);
        assert_eq!(
            easy.start_of(JobId(1)),
            Some(Time(4)),
            "backfilled at the rise"
        );
    }

    #[test]
    fn reference_and_optimized_agree_on_fixture() {
        let inst = blocked_head_instance();
        assert_eq!(
            EasyBackfilling::new().schedule(&inst),
            EasyBackfillingReference::new().schedule(&inst)
        );
    }

    #[test]
    fn names() {
        assert_eq!(
            ConservativeBackfilling::new().name(),
            "conservative-backfilling"
        );
        assert_eq!(EasyBackfilling::new().name(), "EASY-backfilling");
        assert_eq!(
            EasyBackfillingReference::new().name(),
            "EASY-backfilling-reference"
        );
    }
}
