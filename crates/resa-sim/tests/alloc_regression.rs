//! Allocation-regression pin for the steady-state serve/engine loops (PR 6).
//!
//! PRs 2/3 made the batch decision loop allocation-free and PR 6 extends the
//! guarantee to the resident [`ScheduleService`]: after warm-up (and with
//! containers pre-sized via `ensure_capacity` / `reserve_capacity`), a
//! sustained submit/query/reserve/cancel/advance mix must perform **zero**
//! heap allocations per request. A counting global allocator makes the claim
//! checkable, so a future PR reintroducing a per-op `Vec`/`String`/clone on
//! the hot path fails here instead of silently regressing throughput.
//!
//! The allocator wrapper lives in this integration test only — the library
//! crates stay `#![forbid(unsafe_code)]`; an integration test is a separate
//! crate, so the `unsafe` needed to implement [`GlobalAlloc`] is confined to
//! test code.
//!
//! Everything runs inside one `#[test]` so no sibling test thread can
//! allocate concurrently and pollute the counters.

use resa_core::prelude::*;
use resa_sim::policy::EasyPolicy;
use resa_sim::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of heap acquisitions (`alloc` + `realloc`) since process start.
static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic
// increment with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

const MACHINES: u32 = 16;
/// Requests per mix round: submit, query, reserve, cancel, advance.
const ROUND_OPS: usize = 5;

/// One round of the steady-state request mix. Every request is valid (error
/// responses legitimately allocate their message), and every reservation is
/// cancelled before its window starts, so its effective span collapses to
/// zero length and the breakpoint sweep stays bounded.
fn mix_round(svc: &mut ScheduleService<AvailabilityTimeline>, i: usize) {
    let width = 1 + (i % 6) as u32;
    let dur = 1 + (i % 7) as u64;
    svc.submit(width, Dur(dur), None).expect("valid submission");
    svc.query(2 + (i % 4) as u32, Dur(3), None)
        .expect("valid probe");
    let start = Time(svc.now().ticks() + 16 + (i % 5) as u64);
    let (rid, _) = svc
        .reserve(1 + (i % 3) as u32, Dur(4), start)
        .expect("a narrow future window always fits");
    svc.cancel(rid).expect("the reservation is still pending");
    let to = Time(svc.now().ticks() + 1 + (i % 3) as u64);
    svc.advance(to).expect("time only moves forward");
}

/// The resident service performs zero heap allocations per request once
/// warmed up, and the batch engine's event loop allocates only amortized
/// container growth (independent of the per-event count).
#[test]
fn steady_state_loops_do_not_allocate() {
    // -- service half -------------------------------------------------------
    let warmup = 128usize;
    let measured = 256usize;
    let total_jobs = warmup + measured + 1;
    let total_reservations = warmup + measured + 1;

    let mut timeline = AvailabilityTimeline::constant(MACHINES);
    // Breakpoints stay bounded (cancelled-before-start reservations collapse;
    // job windows compact away as capacity re-merges), but pre-size for the
    // worst case anyway: the point of this test is per-op behaviour, not
    // sizing arithmetic.
    timeline.reserve_capacity(4096, 4096);
    let mut svc = ScheduleService::new(ReferencePolicy::Easy, timeline);
    svc.ensure_capacity(total_jobs, total_reservations);

    for i in 0..warmup {
        mix_round(&mut svc, i);
    }

    let before = allocations();
    for i in warmup..warmup + measured {
        mix_round(&mut svc, i);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state service mix allocated ({} allocations over {} requests)",
        after - before,
        measured * ROUND_OPS
    );
    // The mix really exercised the decision loop.
    let stats = svc.stats();
    assert_eq!(stats.submitted, warmup + measured);
    assert!(stats.decisions > 0);

    // -- engine half --------------------------------------------------------
    // The batch event loop may allocate amortized container growth (event
    // queue doubling, the schedule's placement vector, the position map) but
    // nothing per event: doubling the job count must add at most a handful
    // of allocations, never O(jobs) of them.
    let small = engine_run_allocations(500);
    let large = engine_run_allocations(1000);
    assert!(
        large <= small + 64,
        "engine allocations scale with the event count: {small} for 500 jobs \
         vs {large} for 1000 jobs"
    );
}

/// Allocations performed by one `Simulator::run` over `n` jobs (instance
/// construction excluded).
fn engine_run_allocations(n: usize) -> u64 {
    let jobs: Vec<Job> = (0..n)
        .map(|i| Job::released_at(i, 1 + (i % 5) as u32, 1 + (i % 9) as u64, (i as u64) / 2))
        .collect();
    let reservations = vec![
        Reservation::new(0, 3, Dur(40), Time(10)),
        Reservation::new(1, 2, Dur(25), Time(100)),
    ];
    let instance =
        ResaInstance::new(MACHINES, jobs, reservations).expect("the instance is feasible");
    let sim = Simulator::new(instance);
    let before = allocations();
    let result = sim.run(&EasyPolicy);
    let after = allocations();
    assert_eq!(result.schedule.len(), n, "every job must run");
    after - before
}
