//! The figure/table/graham subcommands: thin renderers over
//! [`resa_bench::experiments`].

use crate::opts::{CommonOpts, OutputFormat};
use crate::{CliError, Outcome};
use resa_bench::experiments::{
    average_case_report, fcfs_report, fig1_report, fig2_report, fig3_report, fig4_report,
    graham_report, online_report, priority_report, ExperimentReport,
};

/// `resa figure <1|2|3|4>`.
pub fn figure(which: &str, opts: &CommonOpts) -> Result<Outcome, CliError> {
    let exp = opts.experiment_options();
    let report = match which {
        "1" => fig1_report(&exp),
        "2" => fig2_report(&exp),
        "3" => fig3_report(&exp),
        "4" => fig4_report(&exp),
        other => {
            return Err(CliError::Usage(format!(
                "unknown figure '{other}' (the paper has figures 1..4)"
            )))
        }
    };
    render(&report, opts)
}

/// `resa table <fcfs|average|online|priority>`.
pub fn table(which: &str, opts: &CommonOpts) -> Result<Outcome, CliError> {
    let exp = opts.experiment_options();
    let report = match which {
        "fcfs" => fcfs_report(&exp),
        "average" => average_case_report(&exp),
        "online" => online_report(&exp),
        "priority" => priority_report(&exp),
        other => {
            return Err(CliError::Usage(format!(
                "unknown table '{other}' (expected fcfs|average|online|priority)"
            )))
        }
    };
    render(&report, opts)
}

/// `resa graham`.
pub fn graham(opts: &CommonOpts) -> Result<Outcome, CliError> {
    render(&graham_report(&opts.experiment_options()), opts)
}

/// Render a report in the requested format, persist `--out`, and map the
/// violation count into the outcome.
pub fn render(report: &ExperimentReport, opts: &CommonOpts) -> Result<Outcome, CliError> {
    let rendered = match opts.format {
        OutputFormat::Json => format!("{}\n", report.json),
        OutputFormat::Csv => report.table.to_csv(),
        OutputFormat::Table => {
            let mut out = report.table.to_text();
            for note in &report.notes {
                out.push('\n');
                out.push_str(note);
                out.push('\n');
            }
            out.push_str(&format!(
                "\npaper-guarantee violations: {} {}\n",
                report.violations,
                if report.violations == 0 {
                    "(all bounds held)"
                } else {
                    "(REPRODUCTION BROKEN)"
                }
            ));
            out
        }
    };
    let mut stdout = rendered.clone();
    if let Some(note) = opts.persist(&rendered)? {
        stdout.push_str(&note);
        stdout.push('\n');
    }
    Ok(Outcome {
        stdout,
        violations: report.violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> CommonOpts {
        CommonOpts {
            quick: true,
            ..CommonOpts::default()
        }
    }

    #[test]
    fn figure_dispatch_covers_all_four() {
        for which in ["1", "2", "3", "4"] {
            let out = figure(which, &quick()).unwrap();
            assert_eq!(out.violations, 0, "figure {which}");
        }
        assert!(figure("5", &quick()).is_err());
    }

    #[test]
    fn json_format_is_the_raw_payload() {
        let opts = CommonOpts {
            format: OutputFormat::Json,
            ..quick()
        };
        let out = figure("3", &opts).unwrap();
        assert!(out.stdout.trim_start().starts_with('['));
        // Byte-stable: the same invocation renders identical bytes.
        assert_eq!(out.stdout, figure("3", &opts).unwrap().stdout);
    }

    #[test]
    fn out_writes_the_rendered_output() {
        let path = std::env::temp_dir().join("resa_cli_fig4_test.csv");
        let opts = CommonOpts {
            format: OutputFormat::Csv,
            out: Some(path.display().to_string()),
            ..quick()
        };
        let out = figure("4", &opts).unwrap();
        assert!(out.stdout.contains("[saved"));
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.starts_with("alpha,"));
        let _ = std::fs::remove_file(&path);
    }
}
