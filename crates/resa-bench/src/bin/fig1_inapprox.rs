//! E1 / Figure 1 + Theorem 1: the 3-PARTITION reduction.
//!
//! Thin shim over [`resa_bench::experiments::fig1_report`] — the same
//! pipeline the `resa figure 1` subcommand runs.

use resa_bench::experiments::{emit_report, fig1_report, ExperimentOptions};

fn main() {
    emit_report(&fig1_report(&ExperimentOptions::default()));
}
