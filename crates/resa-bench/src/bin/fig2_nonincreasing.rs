//! E2 / Figure 2 + Proposition 1: non-increasing reservations.
//!
//! Thin shim over [`resa_bench::experiments::fig2_report`] — the same
//! pipeline the `resa figure 2` subcommand runs.

use resa_bench::experiments::{emit_report, fig2_report, ExperimentOptions};

fn main() {
    emit_report(&fig2_report(&ExperimentOptions::default()));
}
