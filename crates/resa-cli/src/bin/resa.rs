//! The `resa` binary: parse the arguments, run the subcommand in-process
//! through [`resa_cli::run`], and map the result onto the documented exit
//! codes (0 = ran clean, 1 = usage/I/O error, 2 = paper-guarantee violated).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
    match resa_cli::run(&arg_refs) {
        Ok(outcome) => {
            print!("{}", outcome.stdout);
            if outcome.violations > 0 {
                eprintln!(
                    "resa: {} paper-guarantee violation(s) — see the report above",
                    outcome.violations
                );
                ExitCode::from(2)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("resa: {e}");
            eprintln!("run `resa help` for usage");
            ExitCode::from(1)
        }
    }
}
