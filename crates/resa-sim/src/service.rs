//! The resident scheduling service behind `resa serve`.
//!
//! The paper's model is inherently on-line (§2.1): jobs arrive over time and
//! the scheduler answers earliest-fit queries against a changing availability
//! profile `m(t)`. The batch [`crate::engine::Simulator`] replays a complete
//! instance; [`ScheduleService`] is the *incremental* counterpart a
//! long-running daemon needs — one availability substrate stays resident
//! while requests arrive in adversarial order:
//!
//! * [`ScheduleService::submit`] — a job arrives (optionally with a future
//!   release date) and is routed through the configured on-line policy;
//! * [`ScheduleService::reserve`] / [`ScheduleService::cancel`] — advance
//!   reservations join or leave the overlay; both are applied
//!   *transactionally* through [`Speculate`]-compatible substrates, so a
//!   rejected request rolls back without a trace;
//! * [`ScheduleService::query`] — a speculative earliest-fit probe
//!   (checkpoint → earliest-fit → tentative reserve → rollback) that never
//!   mutates observable state;
//! * [`ScheduleService::advance`] — virtual time moves forward, draining
//!   completions and waking the policy at each event instant;
//! * [`ScheduleService::stats`] / [`ScheduleService::snapshot`] — aggregate
//!   counters and the current schedule in the shapes `resa replay` reports.
//!
//! # Replay equivalence
//!
//! The service makes scheduling decisions at exactly the instants the batch
//! engine would: job arrivals, job completions, and the *normalized*
//! availability breakpoints of the reservation overlay (equal-capacity
//! boundaries produce no decision point, mirroring
//! `ResourceProfile::from_reservations`). As a consequence, a session whose
//! reservation overlay is fixed up front and then drained to completion
//! produces bit-for-bit the schedule of [`crate::engine::Simulator`] run on
//! the equivalent off-line instance — property-tested below on both
//! substrates. This is the strongest cheap correctness oracle a resident
//! scheduler can have: every latent state bug shows up as a divergence from
//! the batch engine.

use crate::metrics::{MetricsAccumulator, SimMetrics};
use crate::policy::{
    DecisionScratch, EasyPolicy, FcfsPolicy, GreedyPolicy, OnlinePolicy, WaitingJobs,
};
use crate::reference::ReferencePolicy;
use crate::stream::RecordSink;
use crate::trace::{JobRecord, RunTrace};
use resa_core::capacity::Speculate;
use resa_core::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Errors a service request can be rejected with. The service state is
/// unchanged by a rejected request (transactional semantics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// A width of zero or wider than the cluster.
    BadWidth {
        /// The requested width.
        width: u32,
        /// The cluster size.
        machines: u32,
    },
    /// A zero duration.
    ZeroDuration,
    /// A release/start/advance instant before the current virtual time.
    InThePast {
        /// The requested instant.
        at: Time,
        /// The current virtual time.
        now: Time,
    },
    /// A reservation that does not fit the availability left by running jobs
    /// and earlier reservations.
    ReservationRejected {
        /// The underlying capacity error.
        reason: String,
    },
    /// A reservation id that does not exist.
    UnknownReservation {
        /// The offending id.
        id: usize,
    },
    /// A reservation that was already cancelled or has already ended.
    ReservationInactive {
        /// The offending id.
        id: usize,
    },
    /// A drain id that does not exist.
    UnknownDrain {
        /// The offending id.
        id: usize,
    },
    /// A drain that was already revoked or has already ended.
    DrainInactive {
        /// The offending id.
        id: usize,
    },
    /// A deadline submission whose speculative completion bound misses the
    /// due date under [`AdmissionPolicy::Reject`]. The job was not accepted
    /// and no state changed.
    DeadlineUnmet {
        /// The requested due date.
        deadline: Time,
        /// The earliest completion the speculative probe could certify
        /// (`None` when the shape never fits the availability function).
        bound: Option<Time>,
    },
    /// A moldable submission with an invalid width menu, zero area, or no
    /// shape that ever fits the availability function.
    Moldable {
        /// Human-readable cause.
        reason: String,
    },
    /// The single-writer loop of a [`crate::concurrent::ConcurrentService`]
    /// has shut down; no further mutating requests can be applied.
    ServiceStopped,
    /// The write-ahead journal of a durable service rejected the record for
    /// this op (see [`crate::journal`]); the op was **not** applied — a
    /// mutation that cannot be made durable is refused rather than silently
    /// volatile.
    Journal {
        /// The underlying I/O error.
        message: String,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::BadWidth { width, machines } => {
                write!(f, "width {width} outside 1..={machines}")
            }
            ServiceError::ZeroDuration => write!(f, "duration must be positive"),
            ServiceError::InThePast { at, now } => {
                write!(f, "{at} is in the past (virtual time is {now})")
            }
            ServiceError::ReservationRejected { reason } => {
                write!(f, "reservation rejected: {reason}")
            }
            ServiceError::UnknownReservation { id } => write!(f, "unknown reservation {id}"),
            ServiceError::ReservationInactive { id } => {
                write!(f, "reservation {id} is cancelled or already over")
            }
            ServiceError::UnknownDrain { id } => write!(f, "unknown drain {id}"),
            ServiceError::DrainInactive { id } => {
                write!(f, "drain {id} is revoked or already over")
            }
            ServiceError::DeadlineUnmet { deadline, bound } => match bound {
                Some(b) => write!(f, "deadline {deadline} unmet: earliest completion is {b}"),
                None => write!(f, "deadline {deadline} unmet: the shape never fits"),
            },
            ServiceError::Moldable { reason } => {
                write!(f, "moldable submission rejected: {reason}")
            }
            ServiceError::ServiceStopped => write!(f, "service writer has shut down"),
            ServiceError::Journal { message } => {
                write!(f, "journal append failed, op not applied: {message}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// One reservation held by the service, with its live window. A cancelled
/// reservation keeps the elapsed prefix `[start, cancelled_at)` (capacity it
/// blocked in the past cannot be given back retroactively).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceReservation {
    /// Dense id handed out by [`ScheduleService::reserve`].
    pub id: usize,
    /// Processors withdrawn.
    pub width: u32,
    /// Start of the window.
    pub start: Time,
    /// Exclusive end of the *effective* window (truncated by cancellation).
    pub end: Time,
    /// Whether [`ScheduleService::cancel`] resolved this reservation.
    pub cancelled: bool,
}

/// One failure/maintenance drain held by the service: `width` machines
/// withdrawn during `[start, end)`, injected mid-run. A revoked drain keeps
/// its elapsed prefix, exactly like a cancelled [`ServiceReservation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceDrain {
    /// Dense id handed out by [`ScheduleService::inject`] (a namespace
    /// separate from reservation ids).
    pub id: usize,
    /// Machines withdrawn.
    pub width: u32,
    /// Start of the drained window.
    pub start: Time,
    /// Exclusive end of the *effective* window (truncated by revocation).
    pub end: Time,
    /// Whether [`ScheduleService::revoke`] resolved this drain.
    pub revoked: bool,
}

/// What happens to a running job preempted by an injected drain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DrainMode {
    /// Kill-and-resubmit: the victim loses all progress and re-queues with
    /// its full duration.
    #[default]
    Restart,
    /// Checkpoint-requeue: the victim re-queues with only its not-yet-elapsed
    /// duration (`completion − now`).
    Checkpoint,
}

impl DrainMode {
    /// Canonical lowercase name (CLI flag value / protocol field).
    pub fn name(self) -> &'static str {
        match self {
            DrainMode::Restart => "restart",
            DrainMode::Checkpoint => "checkpoint",
        }
    }

    /// Parse a canonical name back into a mode.
    pub fn parse(s: &str) -> Option<DrainMode> {
        match s {
            "restart" => Some(DrainMode::Restart),
            "checkpoint" => Some(DrainMode::Checkpoint),
            _ => None,
        }
    }
}

/// How [`ScheduleService::submit_deadline`] treats a job whose speculative
/// completion bound misses the due date. A job whose bound *meets* the due
/// date is always admitted — committed to its probed placement, which makes
/// "no accepted deadline is ever missed" hold by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Refuse the job; the service state is unchanged.
    #[default]
    Reject,
    /// Accept the job *without* a guarantee, letting it jump the waiting
    /// queue (front of the list instead of the back).
    Boost,
}

impl AdmissionPolicy {
    /// Canonical lowercase name (protocol field value).
    pub fn name(self) -> &'static str {
        match self {
            AdmissionPolicy::Reject => "reject",
            AdmissionPolicy::Boost => "boost",
        }
    }

    /// Parse a canonical name back into a policy.
    pub fn parse(s: &str) -> Option<AdmissionPolicy> {
        match s {
            "reject" => Some(AdmissionPolicy::Reject),
            "boost" => Some(AdmissionPolicy::Boost),
            _ => None,
        }
    }
}

/// How a deadline submission was resolved by [`ScheduleService::submit_deadline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineOutcome {
    /// The speculative bound met the due date: the job is committed to the
    /// probed placement (reserved on the substrate, guaranteed against
    /// drains) and will complete at `completion ≤ deadline`.
    Committed {
        /// The committed start.
        start: Time,
        /// The committed completion (`start + duration`).
        completion: Time,
    },
    /// The bound missed the due date and [`AdmissionPolicy::Boost`] accepted
    /// the job anyway, un-guaranteed, at the front of the waiting queue.
    Boosted,
}

/// Per-job scenario flags, parallel to the job catalog (index == job id).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobFlags {
    /// The due date a deadline submission asked for, if any.
    pub deadline: Option<Time>,
    /// Whether the job is committed to a placement that drains must not
    /// preempt (set by the admitting path of `submit_deadline`).
    pub guaranteed: bool,
    /// Whether the job jumped the waiting queue under
    /// [`AdmissionPolicy::Boost`]. Cleared if the job is later preempted by
    /// a drain (a killed job re-queues at the back, demoted).
    pub boosted: bool,
}

/// What one request changed: jobs started by the decision(s) it triggered
/// and jobs that completed while time advanced.
///
/// Mutating requests hand back `&Effects` borrowed from a buffer the service
/// reuses across requests (part of the PR 6 zero-allocation steady path);
/// clone it if the effects must outlive the next request.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Effects {
    /// Jobs started, in decision order, with their start times.
    pub started: Vec<Placement>,
    /// Jobs whose completion was drained, with their completion times.
    pub completed: Vec<(JobId, Time)>,
}

impl Effects {
    /// Reset for reuse, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.started.clear();
        self.completed.clear();
    }

    /// Whether the request changed nothing.
    pub fn is_empty(&self) -> bool {
        self.started.is_empty() && self.completed.is_empty()
    }
}

/// Aggregate counters of a service session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStats {
    /// Current virtual time.
    pub now: Time,
    /// Cluster size.
    pub machines: u32,
    /// Jobs submitted so far.
    pub submitted: usize,
    /// Jobs not yet released (future release dates).
    pub pending: usize,
    /// Jobs released but not yet started.
    pub waiting: usize,
    /// Jobs started but not yet completed.
    pub running: usize,
    /// Jobs completed.
    pub completed: usize,
    /// Reservations currently active or scheduled (accepted minus cancelled).
    pub reservations: usize,
    /// Decision points at which the policy was consulted.
    pub decisions: u64,
    /// Largest completion time among started jobs (the paper's `C_max` so
    /// far).
    pub makespan: Time,
}

/// A portable snapshot of everything a [`ScheduleService`] has decided: the
/// state a journal snapshot record persists (see [`crate::journal`]) and
/// [`ScheduleService::restore`] rebuilds a live service from.
///
/// Mostly *derived-state-free*: the pending/running heaps, the decision
/// breakpoints and the substrate's availability function are all
/// reconstructible from the jobs, the reservations, the drains and the
/// placements (restore proves it). The one exception is the waiting-queue
/// *order*: boosts jump the queue and drain preemptions re-queue victims at
/// the instant they were killed, so the order stopped being a pure function
/// of release dates — it is persisted verbatim in `queue` instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceState {
    /// Cluster size (the substrate handed to restore must match).
    pub machines: u32,
    /// Virtual time at capture.
    pub now: Time,
    /// Decision points taken so far.
    pub decisions: u64,
    /// Largest completion time among started jobs.
    pub makespan: Time,
    /// Every job ever submitted, in id order (ids are dense). A job
    /// checkpoint-requeued by a drain carries its *remaining* duration.
    pub jobs: Vec<Job>,
    /// Per-job scenario flags, parallel to `jobs`.
    pub flags: Vec<JobFlags>,
    /// Every reservation ever accepted, in id order, cancellation-truncated.
    pub reservations: Vec<ServiceReservation>,
    /// Every drain ever injected, in id order, revocation-truncated.
    pub drains: Vec<ServiceDrain>,
    /// Every placement decided so far, in decision order.
    pub placements: Vec<Placement>,
    /// The waiting queue (job positions) in queue order, front first.
    pub queue: Vec<usize>,
}

/// The resident scheduling service: a live availability substrate plus the
/// incremental decision loop of the batch engine.
///
/// Generic over the availability substrate exactly like the schedulers: the
/// indexed [`AvailabilityTimeline`] is the production backend (checkpoint /
/// rollback speculation), the naive
/// [`ResourceProfile`] the clone-based
/// reference — `resa serve --substrate timeline|profile` runs one session on
/// each and the golden tests assert byte-identical transcripts.
#[derive(Debug, Clone)]
pub struct ScheduleService<C: CapacityQuery + Speculate> {
    machines: u32,
    policy: ReferencePolicy,
    substrate: C,
    now: Time,
    /// Every job ever submitted; ids are dense (id == index).
    jobs: Vec<Job>,
    /// Released-but-not-started job positions, in arrival order.
    waiting: WaitList,
    /// Future arrivals `(release, position)` as a min-heap; entries are
    /// unique, so the pop order equals the sorted order of the old
    /// `BTreeSet` — `O(log n)` push/pop with no per-node allocation, and the
    /// batch engine's tie-break (job id) is the second component.
    pending: BinaryHeap<Reverse<(Time, usize)>>,
    /// Outstanding completions `(completion, position)` as a min-heap.
    running: BinaryHeap<Reverse<(Time, usize)>>,
    /// Future decision instants induced by the reservation overlay: the
    /// normalized breakpoints of the overlay profile, mirroring the
    /// availability-change events of the batch engine. A min-heap rebuilt
    /// from the event scratch on every overlay change.
    breakpoints: BinaryHeap<Reverse<Time>>,
    reservations: Vec<ServiceReservation>,
    /// Failure/maintenance drains, in injection order (id == index).
    drains: Vec<ServiceDrain>,
    /// Per-job scenario flags, parallel to `jobs`.
    flags: Vec<JobFlags>,
    /// `Some(completion)` while the job occupies the substrate (committed or
    /// running), `None` otherwise. Doubles as the staleness guard for the
    /// running heap: a drain preemption cannot cheaply delete the victim's
    /// heap entry, so completions are only honoured when they match this
    /// table (see `advance_into`).
    completion_of: Vec<Option<Time>>,
    /// Jobs occupying the substrate right now (running or committed); kept
    /// explicitly because the running heap may hold stale entries.
    running_count: usize,
    /// Jobs whose completion event has been drained.
    completed_count: usize,
    /// What happens to jobs a drain preempts.
    drain_mode: DrainMode,
    /// Victims of the most recent [`ScheduleService::inject`], in re-queue
    /// (ascending id) order. Reused across requests.
    preempted_buf: Vec<JobId>,
    schedule: Schedule,
    decisions: u64,
    /// Largest completion time among started jobs, maintained incrementally
    /// at every start so `stats` never re-scans the schedule — the
    /// concurrent front publishes stats once per write batch.
    makespan: Time,
    scratch: DecisionScratch,
    to_start: Vec<JobId>,
    /// Reused effects buffer handed back by reference from every mutating
    /// request.
    fx_buf: Effects,
    /// Reused `(time, width-delta)` event buffer for breakpoint refreshes.
    bp_events: Vec<(u64, i64)>,
    /// Ids below `base` have been retired: their catalog entries were
    /// compacted away and catalog position `pos` now holds id `base + pos`.
    /// Stays `0` until [`ScheduleService::retire_completed`] compacts.
    base: usize,
    /// Metrics of retired placements, folded in decision order so merging
    /// with the live placements reproduces `SimMetrics::from_schedule`
    /// bit-for-bit.
    retired_metrics: MetricsAccumulator,
    /// Completed-job records handed to a [`RecordSink`] so far.
    retired_records: usize,
    /// Parallel to `jobs`: `true` once the position's placement has been
    /// retired, making the catalog entry eligible for compaction.
    retired_placement: Vec<bool>,
}

impl<C: CapacityQuery + Speculate> ScheduleService<C> {
    /// Create a service on `substrate`, which must represent an empty
    /// cluster (constant capacity `substrate.base()`).
    ///
    /// # Panics
    /// Panics if the substrate has no machines.
    pub fn new(policy: ReferencePolicy, substrate: C) -> Self {
        let machines = substrate.base();
        assert!(machines > 0, "a cluster needs at least one machine");
        ScheduleService {
            machines,
            policy,
            substrate,
            now: Time::ZERO,
            jobs: Vec::new(),
            waiting: WaitList::with_capacity(0),
            pending: BinaryHeap::new(),
            running: BinaryHeap::new(),
            breakpoints: BinaryHeap::new(),
            reservations: Vec::new(),
            drains: Vec::new(),
            flags: Vec::new(),
            completion_of: Vec::new(),
            running_count: 0,
            completed_count: 0,
            drain_mode: DrainMode::default(),
            preempted_buf: Vec::new(),
            schedule: Schedule::new(),
            decisions: 0,
            makespan: Time::ZERO,
            scratch: DecisionScratch::default(),
            to_start: Vec::new(),
            fx_buf: Effects::default(),
            bp_events: Vec::new(),
            base: 0,
            retired_metrics: MetricsAccumulator::new(),
            retired_records: 0,
            retired_placement: Vec::new(),
        }
    }

    /// The catalog position of a live job id.
    #[inline]
    fn pos_of(&self, id: JobId) -> usize {
        id.0 - self.base
    }

    /// The job id stored at catalog position `pos`.
    #[inline]
    fn id_at(&self, pos: usize) -> JobId {
        JobId(self.base + pos)
    }

    /// Pre-size every per-job container for a session expected to hold up to
    /// `jobs` jobs and `reservations` reservations, so a steady-state loop
    /// staying under these bounds allocates nothing per request (pinned by
    /// the allocation-regression test in `tests/alloc_regression.rs`).
    pub fn ensure_capacity(&mut self, jobs: usize, reservations: usize) {
        self.jobs.reserve(jobs.saturating_sub(self.jobs.len()));
        self.waiting.ensure_capacity(jobs);
        self.pending
            .reserve(jobs.saturating_sub(self.pending.len()));
        self.running
            .reserve(jobs.saturating_sub(self.running.len()));
        self.to_start
            .reserve(jobs.saturating_sub(self.to_start.len()));
        self.schedule
            .reserve(jobs.saturating_sub(self.schedule.len()));
        self.fx_buf.started.reserve(jobs);
        self.fx_buf.completed.reserve(jobs);
        self.flags.reserve(jobs.saturating_sub(self.flags.len()));
        self.completion_of
            .reserve(jobs.saturating_sub(self.completion_of.len()));
        self.retired_placement
            .reserve(jobs.saturating_sub(self.retired_placement.len()));
        self.preempted_buf
            .reserve(jobs.saturating_sub(self.preempted_buf.len()));
        self.reservations
            .reserve(reservations.saturating_sub(self.reservations.len()));
        self.breakpoints
            .reserve((2 * reservations).saturating_sub(self.breakpoints.len()));
        self.bp_events.reserve(2 * reservations);
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The cluster size.
    pub fn machines(&self) -> u32 {
        self.machines
    }

    /// The configured on-line policy.
    pub fn policy(&self) -> ReferencePolicy {
        self.policy
    }

    /// The schedule of every job started so far, in decision order.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Number of decision points so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// All reservations ever accepted (including cancelled ones, truncated).
    pub fn reservations(&self) -> &[ServiceReservation] {
        &self.reservations
    }

    /// All drains ever injected (including revoked ones, truncated).
    pub fn drains(&self) -> &[ServiceDrain] {
        &self.drains
    }

    /// Per-job scenario flags, parallel to the job catalog.
    pub fn job_flags(&self) -> &[JobFlags] {
        &self.flags
    }

    /// What happens to jobs a drain preempts.
    pub fn drain_mode(&self) -> DrainMode {
        self.drain_mode
    }

    /// Configure what happens to jobs a drain preempts. Construction-time
    /// configuration, not persisted state: journal recovery re-applies the
    /// flag it was launched with before replaying ops.
    pub fn set_drain_mode(&mut self, mode: DrainMode) {
        self.drain_mode = mode;
    }

    /// Victims of the most recent [`ScheduleService::inject`], in re-queue
    /// (ascending id) order; empty when it preempted nothing. Valid until
    /// the next inject.
    pub fn last_preempted(&self) -> &[JobId] {
        &self.preempted_buf
    }

    /// Capture the decided state of the session as a [`ServiceState`] —
    /// everything [`ScheduleService::restore`] needs to rebuild an
    /// equivalent live service. Cheap relative to a snapshot record write
    /// (three `Vec` clones), called by the journal layer at compaction
    /// points only.
    pub fn state(&self) -> ServiceState {
        assert!(
            self.base == 0 && self.retired_records == 0,
            "a retiring session cannot be checkpointed: retired records left \
             the process, so the captured state would be partial (the serve \
             front rejects --retire alongside --journal)"
        );
        ServiceState {
            machines: self.machines,
            now: self.now,
            decisions: self.decisions,
            makespan: self.makespan,
            jobs: self.jobs.clone(),
            flags: self.flags.clone(),
            reservations: self.reservations.clone(),
            drains: self.drains.clone(),
            placements: self.schedule.placements().to_vec(),
            queue: self.waiting.iter().collect(),
        }
    }

    /// Rebuild a live service from a captured [`ServiceState`] on a fresh
    /// `substrate` (which must be an empty cluster of `state.machines`
    /// machines). The derived structures are reconstructed, not persisted:
    ///
    /// * the substrate re-reserves the *future suffix* of every effective
    ///   reservation and drain window and every unfinished placement —
    ///   capacity before `now` is never consulted again (queries clamp to
    ///   `now`, policies decide at `now`), so the availability function
    ///   agrees with the original on all of `[now, ∞)`, which is everything
    ///   observable;
    /// * the waiting list is rebuilt verbatim from the persisted queue order
    ///   (boosts and drain preemptions made the order part of the state —
    ///   see [`ServiceState::queue`]);
    /// * pending/running heaps and overlay breakpoints are re-derived from
    ///   release dates, completion times and the effective overlay.
    ///
    /// A state captured between requests (services are quiescent there — the
    /// writer loop and the sequential transports never snapshot mid-request)
    /// restores to a service that answers every future request identically;
    /// the `state_restore_roundtrip` proptest pins this.
    ///
    /// # Panics
    /// Panics if `substrate` is not an empty cluster of `state.machines`
    /// machines, or if `state` is internally inconsistent (a placement for
    /// an unknown job, a window the fresh substrate rejects).
    pub fn restore(policy: ReferencePolicy, state: &ServiceState, substrate: C) -> Self {
        assert_eq!(
            substrate.base(),
            state.machines,
            "restore substrate must match the captured cluster size"
        );
        let mut svc = ScheduleService::new(policy, substrate);
        svc.now = state.now;
        svc.decisions = state.decisions;
        svc.makespan = state.makespan;
        svc.jobs = state.jobs.clone();
        svc.flags = state.flags.clone();
        svc.reservations = state.reservations.clone();
        svc.drains = state.drains.clone();
        svc.completion_of = vec![None; state.jobs.len()];
        svc.retired_placement = vec![false; state.jobs.len()];
        // Future suffixes of the effective reservation and drain windows.
        // Cancelled/revoked windows released their suffix at resolution time
        // (which was <= now), and windows wholly in the past never get
        // consulted again — only live windows reaching past `now` still
        // occupy the substrate.
        let reservation_windows = state
            .reservations
            .iter()
            .filter(|r| !r.cancelled)
            .map(|r| (r.width, r.start, r.end));
        let drain_windows = state
            .drains
            .iter()
            .filter(|d| !d.revoked)
            .map(|d| (d.width, d.start, d.end));
        for (width, start, end) in reservation_windows.chain(drain_windows) {
            let from = start.max(state.now);
            if end > from {
                svc.substrate
                    .reserve(from, end.since(from), width)
                    .expect("the original substrate accepted this window");
            }
        }
        // Placements: re-occupy unfinished runs, rebuild the schedule and
        // the running heap. Completions strictly after `now` are still
        // running or committed (the live service drains completions at their
        // instant, so an occupying entry's completion is always > now).
        svc.schedule = Schedule::from_placements(state.placements.clone());
        for p in &state.placements {
            let job = state.jobs[p.job.0];
            let completion = p.start.saturating_add(job.duration);
            if completion > state.now {
                let from = p.start.max(state.now);
                svc.substrate
                    .reserve(from, completion.since(from), job.width)
                    .expect("the original substrate accepted this run");
                svc.running.push(Reverse((completion, p.job.0)));
                svc.completion_of[p.job.0] = Some(completion);
                svc.running_count += 1;
            } else {
                svc.completed_count += 1;
            }
        }
        // Waiting = the persisted queue, verbatim; pending = everything
        // unplaced and unqueued (necessarily released strictly after now).
        let mut accounted: Vec<bool> = vec![false; state.jobs.len()];
        for p in &state.placements {
            accounted[p.job.0] = true;
        }
        svc.waiting.ensure_capacity(state.jobs.len());
        for &pos in &state.queue {
            svc.waiting.push_back(pos);
            accounted[pos] = true;
        }
        for (pos, job) in state.jobs.iter().enumerate() {
            if !accounted[pos] {
                debug_assert!(job.release > state.now, "unqueued job must be pending");
                svc.pending.push(Reverse((job.release, pos)));
            }
        }
        svc.refresh_breakpoints();
        svc
    }

    // -- requests -----------------------------------------------------------

    /// Submit a job of `width` processors for `duration` ticks, arriving at
    /// `release` (the current virtual time when `None`). Returns the new
    /// job's id and the starts the arrival decision triggered (borrowed from
    /// the reused effects buffer — valid until the next request).
    pub fn submit(
        &mut self,
        width: u32,
        duration: Dur,
        release: Option<Time>,
    ) -> Result<(JobId, &Effects), ServiceError> {
        if width == 0 || width > self.machines {
            return Err(ServiceError::BadWidth {
                width,
                machines: self.machines,
            });
        }
        if duration.is_zero() {
            return Err(ServiceError::ZeroDuration);
        }
        let release = release.unwrap_or(self.now);
        if release < self.now {
            return Err(ServiceError::InThePast {
                at: release,
                now: self.now,
            });
        }
        let pos = self.jobs.len();
        let id = self.id_at(pos);
        self.jobs
            .push(Job::released_at(id.0, width, duration, release));
        self.flags.push(JobFlags::default());
        self.completion_of.push(None);
        self.retired_placement.push(false);
        self.waiting.ensure_capacity(pos + 1);
        let mut effects = std::mem::take(&mut self.fx_buf);
        effects.clear();
        if release == self.now {
            // The arrival is an event at the current instant: enqueue and
            // decide, exactly like the batch engine's arrival handling.
            self.waiting.push_back(pos);
            self.decide_now(&mut effects);
        } else {
            self.pending.push(Reverse((release, pos)));
        }
        self.fx_buf = effects;
        Ok((id, &self.fx_buf))
    }

    /// Reserve `width` processors during `[start, start + duration)`.
    /// Applied transactionally: a reservation that does not fit the
    /// availability left by running jobs and earlier reservations is
    /// rejected and the substrate is untouched.
    pub fn reserve(
        &mut self,
        width: u32,
        duration: Dur,
        start: Time,
    ) -> Result<(usize, &Effects), ServiceError> {
        if width == 0 || width > self.machines {
            return Err(ServiceError::BadWidth {
                width,
                machines: self.machines,
            });
        }
        if duration.is_zero() {
            return Err(ServiceError::ZeroDuration);
        }
        if start < self.now {
            return Err(ServiceError::InThePast {
                at: start,
                now: self.now,
            });
        }
        self.substrate
            .reserve(start, duration, width)
            .map_err(|e| ServiceError::ReservationRejected {
                reason: e.to_string(),
            })?;
        let id = self.reservations.len();
        self.reservations.push(ServiceReservation {
            id,
            width,
            start,
            end: start.saturating_add(duration),
            cancelled: false,
        });
        self.refresh_breakpoints();
        let mut effects = std::mem::take(&mut self.fx_buf);
        effects.clear();
        // The overlay changed: a window starting now changes capacity at the
        // current instant, and even a future window can alter an EASY
        // decision at `now` (the blocked head's shadow moves later, which
        // may newly admit a backfill candidate). Consult the policy — a
        // no-op when nothing waits, which keeps replayable sessions
        // (overlay fixed before the first submission) decision-identical to
        // the batch engine.
        self.decide_now(&mut effects);
        self.fx_buf = effects;
        Ok((id, &self.fx_buf))
    }

    /// Cancel reservation `id`, releasing its not-yet-elapsed window
    /// `[max(now, start), end)`. The elapsed prefix stays in effect — the
    /// past cannot be rewritten. Applied transactionally.
    pub fn cancel(&mut self, id: usize) -> Result<&Effects, ServiceError> {
        let r = *self
            .reservations
            .get(id)
            .ok_or(ServiceError::UnknownReservation { id })?;
        if r.cancelled || r.end <= self.now {
            return Err(ServiceError::ReservationInactive { id });
        }
        let from = r.start.max(self.now);
        let remaining = r.end.since(from);
        if !remaining.is_zero() {
            self.substrate
                .release(from, remaining, r.width)
                .expect("releasing an active reservation's own window");
        }
        let entry = &mut self.reservations[id];
        entry.cancelled = true;
        entry.end = from;
        self.refresh_breakpoints();
        let mut effects = std::mem::take(&mut self.fx_buf);
        effects.clear();
        // Capacity grew — at the current instant if the window had started,
        // in the future otherwise. Both can unblock a waiting job's run
        // (which extends into the future), and a job blocked *only* by the
        // cancelled window would otherwise be stranded forever: with the
        // window gone there may be no future event left to wake the policy.
        // Deciding unconditionally closes that hole and is a no-op when
        // nothing waits.
        self.decide_now(&mut effects);
        self.fx_buf = effects;
        Ok(&self.fx_buf)
    }

    /// Inject a failure or maintenance *drain*: `width` machines withdrawn
    /// during `[start, start + duration)`, inserted mid-run. Unlike
    /// [`ScheduleService::reserve`], a drain does not take "no" for an
    /// answer from running jobs: when the window does not fit the remaining
    /// capacity, the *minimal* set of non-guaranteed running jobs whose runs
    /// overlap the window (half-open — a job completing exactly at `start`
    /// is untouched, most-recently-started killed first) is preempted to
    /// make room, each victim re-queued per the configured [`DrainMode`].
    /// Jobs committed by deadline admission are never preempted; a drain
    /// that cannot fit without killing one is rejected transactionally.
    ///
    /// Returns the drain id and the effects of the decision the capacity
    /// change triggered; the preempted job ids are available from
    /// [`ScheduleService::last_preempted`] until the next inject.
    pub fn inject(
        &mut self,
        width: u32,
        duration: Dur,
        start: Time,
    ) -> Result<(usize, &Effects), ServiceError> {
        if width == 0 || width > self.machines {
            return Err(ServiceError::BadWidth {
                width,
                machines: self.machines,
            });
        }
        if duration.is_zero() {
            return Err(ServiceError::ZeroDuration);
        }
        if start < self.now {
            return Err(ServiceError::InThePast {
                at: start,
                now: self.now,
            });
        }
        let end = start.saturating_add(duration);
        self.preempted_buf.clear();
        if self.substrate.reserve(start, duration, width).is_err() {
            // Candidate victims: non-guaranteed jobs occupying the substrate
            // whose run `[run start, completion)` overlaps the drained
            // window. `(pos, width, run start, completion)`, killed in
            // most-recently-started-first order so long-running work is
            // disturbed last.
            let mut victims: Vec<(usize, u32, Time, Time)> = Vec::new();
            for p in self.schedule.placements() {
                let pos = self.pos_of(p.job);
                let Some(completion) = self.completion_of[pos] else {
                    continue;
                };
                if self.flags[pos].guaranteed {
                    continue;
                }
                if p.start < end && completion > start {
                    victims.push((pos, self.jobs[pos].width, p.start, completion));
                }
            }
            victims.sort_unstable_by_key(|v| std::cmp::Reverse((v.2, v.0)));
            // Minimal victim prefix whose release makes the window fit,
            // found under speculation so a rejection leaves no trace.
            let now = self.now;
            let needed = self.substrate.speculate(|s| {
                for (k, &(_, w, run_start, completion)) in victims.iter().enumerate() {
                    let from = run_start.max(now);
                    s.release(from, completion.since(from), w)
                        .expect("releasing a running job's own window");
                    if s.reserve(start, duration, width).is_ok() {
                        return Some(k + 1);
                    }
                }
                None
            });
            let Some(k) = needed else {
                return Err(ServiceError::ReservationRejected {
                    reason: format!(
                        "drain [{start}, {end})x{width} does not fit even after \
                         preempting every non-guaranteed job overlapping it"
                    ),
                });
            };
            let mut kill = victims[..k].to_vec();
            kill.sort_unstable_by_key(|&(pos, ..)| pos);
            for &(pos, w, run_start, completion) in &kill {
                let from = run_start.max(self.now);
                self.substrate
                    .release(from, completion.since(from), w)
                    .expect("releasing a running job's own window");
                self.schedule.remove(self.id_at(pos));
                self.completion_of[pos] = None;
                self.running_count -= 1;
                if self.drain_mode == DrainMode::Checkpoint {
                    // Only the not-yet-elapsed work remains to be redone.
                    self.jobs[pos].duration = completion.since(self.now);
                }
                self.flags[pos].boosted = false;
                self.waiting.push_back(pos);
                self.preempted_buf.push(self.id_at(pos));
            }
            self.recompute_makespan();
            self.substrate
                .reserve(start, duration, width)
                .expect("speculation certified the drain window");
        }
        let id = self.drains.len();
        self.drains.push(ServiceDrain {
            id,
            width,
            start,
            end,
            revoked: false,
        });
        self.refresh_breakpoints();
        let mut effects = std::mem::take(&mut self.fx_buf);
        effects.clear();
        // The overlay changed, and preemption may have re-queued work that
        // can restart immediately on the surviving machines.
        self.decide_now(&mut effects);
        self.fx_buf = effects;
        Ok((id, &self.fx_buf))
    }

    /// Revoke drain `id` (the failure healed / maintenance finished early),
    /// releasing its not-yet-elapsed window `[max(now, start), end)`. The
    /// elapsed prefix stays in effect, exactly like
    /// [`ScheduleService::cancel`] — and jobs the drain already preempted
    /// stay preempted (the past cannot be rewritten).
    pub fn revoke(&mut self, id: usize) -> Result<&Effects, ServiceError> {
        let d = *self
            .drains
            .get(id)
            .ok_or(ServiceError::UnknownDrain { id })?;
        if d.revoked || d.end <= self.now {
            return Err(ServiceError::DrainInactive { id });
        }
        let from = d.start.max(self.now);
        let remaining = d.end.since(from);
        if !remaining.is_zero() {
            self.substrate
                .release(from, remaining, d.width)
                .expect("releasing an active drain's own window");
        }
        let entry = &mut self.drains[id];
        entry.revoked = true;
        entry.end = from;
        self.refresh_breakpoints();
        let mut effects = std::mem::take(&mut self.fx_buf);
        effects.clear();
        // Capacity grew; same wake-up obligation as cancel.
        self.decide_now(&mut effects);
        self.fx_buf = effects;
        Ok(&self.fx_buf)
    }

    /// Submit a job with a due date. The speculative earliest-fit bound
    /// gates admission: when `start + duration ≤ deadline` for the earliest
    /// probed start, the job is **committed** to that placement — reserved
    /// on the substrate immediately, guaranteed against drains — so an
    /// accepted deadline can never be missed. Equality admits: windows are
    /// half-open, so a job completing exactly *at* the deadline instant has
    /// finished by it.
    ///
    /// When the bound misses the due date, `admission` decides:
    /// [`AdmissionPolicy::Reject`] refuses the job without a state change
    /// ([`ServiceError::DeadlineUnmet`]); [`AdmissionPolicy::Boost`] accepts
    /// it un-guaranteed at the *front* of the waiting queue.
    pub fn submit_deadline(
        &mut self,
        width: u32,
        duration: Dur,
        release: Option<Time>,
        deadline: Time,
        admission: AdmissionPolicy,
    ) -> Result<(JobId, DeadlineOutcome, &Effects), ServiceError> {
        if width == 0 || width > self.machines {
            return Err(ServiceError::BadWidth {
                width,
                machines: self.machines,
            });
        }
        if duration.is_zero() {
            return Err(ServiceError::ZeroDuration);
        }
        let release = release.unwrap_or(self.now);
        if release < self.now {
            return Err(ServiceError::InThePast {
                at: release,
                now: self.now,
            });
        }
        let probe = self.substrate.speculate(|s| {
            let start = s.earliest_fit(width, duration, release)?;
            s.reserve(start, duration, width)
                .expect("earliest_fit certified the window");
            Some(start)
        });
        let committed = probe.filter(|&s| s.saturating_add(duration) <= deadline);
        if let Some(start) = committed {
            let completion = start.saturating_add(duration);
            self.substrate
                .reserve(start, duration, width)
                .expect("the speculative probe certified this window");
            let pos = self.jobs.len();
            let id = self.id_at(pos);
            self.jobs
                .push(Job::released_at(id.0, width, duration, release));
            self.flags.push(JobFlags {
                deadline: Some(deadline),
                guaranteed: true,
                boosted: false,
            });
            self.completion_of.push(Some(completion));
            self.retired_placement.push(false);
            self.waiting.ensure_capacity(pos + 1);
            self.schedule.place(id, start);
            self.running.push(Reverse((completion, pos)));
            self.running_count += 1;
            self.makespan = self.makespan.max(completion);
            self.refresh_breakpoints();
            let mut effects = std::mem::take(&mut self.fx_buf);
            effects.clear();
            effects.started.push(Placement { job: id, start });
            // The committed window shrank future capacity — which, like a
            // reservation, can move an EASY head's shadow later and newly
            // admit a backfill candidate. Consult the policy.
            self.decide_now(&mut effects);
            self.fx_buf = effects;
            return Ok((
                id,
                DeadlineOutcome::Committed { start, completion },
                &self.fx_buf,
            ));
        }
        match admission {
            AdmissionPolicy::Reject => Err(ServiceError::DeadlineUnmet {
                deadline,
                bound: probe.map(|s| s.saturating_add(duration)),
            }),
            AdmissionPolicy::Boost => {
                let pos = self.jobs.len();
                let id = self.id_at(pos);
                self.jobs
                    .push(Job::released_at(id.0, width, duration, release));
                self.flags.push(JobFlags {
                    deadline: Some(deadline),
                    guaranteed: false,
                    boosted: true,
                });
                self.completion_of.push(None);
                self.retired_placement.push(false);
                self.waiting.ensure_capacity(pos + 1);
                let mut effects = std::mem::take(&mut self.fx_buf);
                effects.clear();
                if release == self.now {
                    self.waiting.push_front(pos);
                    self.decide_now(&mut effects);
                } else {
                    self.pending.push(Reverse((release, pos)));
                }
                self.fx_buf = effects;
                Ok((id, DeadlineOutcome::Boosted, &self.fx_buf))
            }
        }
    }

    /// Submit a *moldable* job: a total work `area` (processor×ticks) plus a
    /// menu of admissible widths. The service concretizes the shape with
    /// [`best_width`] — the width whose `(⌈area/width⌉)`-tick rigid form has
    /// the earliest probed completion, ties to the narrowest — and routes it
    /// through the ordinary [`ScheduleService::submit`] path, so a moldable
    /// job is indistinguishable from a rigid one once admitted (which keeps
    /// the off-line replay oracle intact).
    pub fn submit_moldable(
        &mut self,
        widths: &[u32],
        area: u64,
    ) -> Result<(JobId, WidthChoice, &Effects), ServiceError> {
        let choice = best_width(&self.substrate, widths, area, self.now)
            .map_err(|e| ServiceError::Moldable {
                reason: e.to_string(),
            })?
            .ok_or_else(|| ServiceError::Moldable {
                reason: "no admissible width ever fits the availability function".into(),
            })?;
        let id = self.submit(choice.width, choice.duration, None)?.0;
        Ok((id, choice, &self.fx_buf))
    }

    /// Speculative earliest-fit probe: the earliest start a `width ×
    /// duration` job would get if submitted now (or at `not_before`), or
    /// `None` if it can never fit. Runs as checkpoint → earliest-fit →
    /// tentative reserve → rollback on the substrate, so the observable
    /// state is untouched — including by the validating reserve.
    pub fn query(
        &mut self,
        width: u32,
        duration: Dur,
        not_before: Option<Time>,
    ) -> Result<Option<Time>, ServiceError> {
        if width == 0 || width > self.machines {
            return Err(ServiceError::BadWidth {
                width,
                machines: self.machines,
            });
        }
        if duration.is_zero() {
            return Err(ServiceError::ZeroDuration);
        }
        let from = not_before.unwrap_or(self.now).max(self.now);
        Ok(self.substrate.speculate(|s| {
            let start = s.earliest_fit(width, duration, from)?;
            s.reserve(start, duration, width)
                .expect("earliest_fit certified the window");
            Some(start)
        }))
    }

    /// Advance virtual time to `to`, draining completions, releasing pending
    /// arrivals and consulting the policy at every event instant on the way
    /// (completion, arrival, or reservation breakpoint), in time order.
    pub fn advance(&mut self, to: Time) -> Result<&Effects, ServiceError> {
        if to < self.now {
            return Err(ServiceError::InThePast {
                at: to,
                now: self.now,
            });
        }
        let mut effects = std::mem::take(&mut self.fx_buf);
        effects.clear();
        self.advance_into(to, &mut effects);
        self.fx_buf = effects;
        Ok(&self.fx_buf)
    }

    /// Advance virtual time to `max(now, to)`: the clock-driven variant of
    /// [`ScheduleService::advance`] that treats a stale target as "no time
    /// passed" instead of rejecting it. `resa serve --realtime` ticks the
    /// session with this before every request, so a wall-clock reading
    /// raced by a concurrent writer batch can never poison the session
    /// with an [`ServiceError::InThePast`] rejection.
    pub fn advance_clamped(&mut self, to: Time) -> &Effects {
        let to = to.max(self.now);
        let mut effects = std::mem::take(&mut self.fx_buf);
        effects.clear();
        self.advance_into(to, &mut effects);
        self.fx_buf = effects;
        &self.fx_buf
    }

    /// Advance until no event is outstanding (all submitted jobs completed),
    /// leaving `now` at the last event instant.
    pub fn drain(&mut self) -> &Effects {
        let mut effects = std::mem::take(&mut self.fx_buf);
        effects.clear();
        while let Some(at) = self.next_event() {
            self.advance_into(at, &mut effects);
        }
        self.fx_buf = effects;
        &self.fx_buf
    }

    /// Aggregate counters of the session so far.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            now: self.now,
            machines: self.machines,
            submitted: self.base + self.jobs.len(),
            pending: self.pending.len(),
            waiting: self.waiting.len(),
            running: self.running_count,
            completed: self.completed_count,
            reservations: self
                .reservations
                .iter()
                .filter(|r| !r.cancelled && r.end > r.start)
                .count(),
            decisions: self.decisions,
            makespan: self.makespan,
        }
    }

    /// The current schedule as per-job lifecycle records plus run metrics —
    /// the same shapes `resa replay` reports. Jobs still running carry their
    /// scheduled completion time.
    pub fn snapshot(&self) -> (Vec<JobRecord>, SimMetrics) {
        if self.retired_records == 0 {
            let instance = self.to_instance();
            let trace = RunTrace::from_schedule(&instance, &self.schedule);
            let metrics = SimMetrics::from_schedule(&instance, &self.schedule);
            return (trace.records().to_vec(), metrics);
        }
        // Retired placements already left the schedule (and the process, via
        // the record sink): report the live ones in the same `(started, id)`
        // order and merge the retired accumulator, so the metrics equal what
        // a never-retired twin reports bit for bit — the retired prefix was
        // a decision-order prefix, and the live placements continue that
        // order (pinned by `retirement_preserves_snapshot_and_stats`).
        let mut records: Vec<JobRecord> = self
            .schedule
            .placements()
            .iter()
            .map(|p| {
                let job = self.jobs[self.pos_of(p.job)];
                JobRecord {
                    job: p.job,
                    width: job.width,
                    duration: job.duration,
                    arrived: job.release,
                    started: p.start,
                    completed: p.start.saturating_add(job.duration),
                }
            })
            .collect();
        records.sort_unstable_by_key(|r| (r.started, r.job));
        let mut acc = self.retired_metrics.clone();
        for p in self.schedule.placements() {
            acc.record(&self.jobs[self.pos_of(p.job)], p.start);
        }
        let profile = ResourceProfile::from_reservations(self.machines, &self.effective_overlay())
            .expect("the live substrate accepted every window");
        (records, acc.finish(&profile))
    }

    /// Completed-job records handed to a [`RecordSink`] by
    /// [`ScheduleService::retire_completed`] so far.
    pub fn retired_records(&self) -> usize {
        self.retired_records
    }

    /// Retire every *leading* completed placement into `sink`, then compact
    /// the job catalog, so a long-running session's resident set tracks the
    /// active jobs instead of the whole history. Returns how many records
    /// were written.
    ///
    /// Only a decision-order *prefix* of the schedule is retired — that is
    /// what keeps the merged metrics of [`ScheduleService::snapshot`]
    /// bit-identical to a never-retired twin (the bounded-slowdown sum is a
    /// non-associative `f64` fold). A completed placement behind a still-live
    /// one simply waits its turn; with FIFO-ish completion orders the prefix
    /// covers almost everything.
    ///
    /// Catalog compaction has the same prefix shape: positions are freed
    /// once every earlier position is also retired. A drain-preempted job
    /// re-queues under its original id (both [`DrainMode`]s), so its entry
    /// blocks compaction only until it re-runs and completes. Retiring
    /// sessions cannot be checkpointed ([`ScheduleService::state`] panics)
    /// or oracle-compared.
    pub fn retire_completed<K: RecordSink>(&mut self, sink: &mut K) -> usize {
        // 1. The longest leading run of completed placements.
        let mut n = 0usize;
        for p in self.schedule.placements() {
            let pos = self.pos_of(p.job);
            let done = self.completion_of[pos].is_none()
                && p.start.saturating_add(self.jobs[pos].duration) <= self.now;
            if !done {
                break;
            }
            n += 1;
        }
        if n == 0 {
            return 0;
        }
        // 2. Retire it: fold metrics in decision order, emit records, mark
        //    the catalog entries.
        let mut i = 0usize;
        let retired = self.schedule.retire_where(|_| {
            i += 1;
            i <= n
        });
        for p in &retired {
            let pos = self.pos_of(p.job);
            let job = self.jobs[pos];
            self.retired_metrics.record(&job, p.start);
            self.retired_placement[pos] = true;
            sink.record(JobRecord {
                job: p.job,
                width: job.width,
                duration: job.duration,
                arrived: job.release,
                started: p.start,
                completed: p.start.saturating_add(job.duration),
            });
        }
        self.retired_records += n;
        // 3. Compact the leading fully-retired run of the catalog. Retired
        //    positions are in no heap and no queue: their completions
        //    drained (that is what made them retirable), and any stale ghost
        //    entry a preemption left in the running heap sits at a time no
        //    later than the job's eventual completion, hence also drained.
        let k = self.retired_placement.iter().take_while(|&&r| r).count();
        if k > 0 {
            self.jobs.drain(..k);
            self.flags.drain(..k);
            self.completion_of.drain(..k);
            self.retired_placement.drain(..k);
            self.base += k;
            self.waiting.rebase(k);
            let running = std::mem::take(&mut self.running);
            self.running = running
                .into_iter()
                .map(|Reverse((t, pos))| Reverse((t, pos - k)))
                .collect();
            let pending = std::mem::take(&mut self.pending);
            self.pending = pending
                .into_iter()
                .map(|Reverse((t, pos))| Reverse((t, pos - k)))
                .collect();
        }
        n
    }

    /// Freeze the availability substrate into an immutable,
    /// generation-stamped [`TimelineSnapshot`] (see
    /// [`resa_core::snapshot`]). The writer loop of
    /// [`crate::concurrent::ConcurrentService`] calls this at every batch
    /// boundary — no transaction mark is ever outstanding between requests,
    /// so the frozen function is exactly the committed state.
    pub fn freeze_timeline(&self, generation: u64) -> TimelineSnapshot
    where
        C: Snapshotable,
    {
        self.substrate.freeze(generation)
    }

    /// The session so far as an equivalent off-line instance: every
    /// submitted job with its release date, plus the effective (possibly
    /// cancellation-truncated) reservation windows. Replaying this instance
    /// through the batch [`crate::engine::Simulator`] under the same policy
    /// reproduces the service's schedule whenever the overlay was fixed
    /// before the first submission (see the module docs).
    pub fn to_instance(&self) -> ResaInstance {
        ResaInstance::new(self.machines, self.jobs.clone(), self.effective_overlay())
            .expect("the live substrate accepted every window")
    }

    /// The oracle view of the session: the off-line instance and schedule
    /// the batch [`crate::engine::Simulator`] must be compared against when
    /// the session contains deadline-committed jobs.
    ///
    /// Committed jobs are placed by admission, not by the on-line policy, so
    /// the off-line engine cannot re-derive them — they become overlay
    /// windows (capacity withdrawn at their committed placement) instead of
    /// instance jobs, and both the remaining jobs and the service's
    /// placements are re-densified over the non-committed population. For a
    /// session without committed jobs this degenerates to
    /// `(to_instance(), schedule().clone())`.
    pub fn oracle_parts(&self) -> (ResaInstance, Schedule) {
        assert!(
            self.base == 0,
            "the off-line oracle needs the full job catalog; retiring \
             sessions are excluded from oracle comparisons"
        );
        let mut remap = vec![usize::MAX; self.jobs.len()];
        let mut jobs = Vec::new();
        for (pos, job) in self.jobs.iter().enumerate() {
            if self.flags[pos].guaranteed {
                continue;
            }
            remap[pos] = jobs.len();
            jobs.push(Job::released_at(
                jobs.len(),
                job.width,
                job.duration,
                job.release,
            ));
        }
        let mut overlay = self.effective_overlay();
        for p in self.schedule.placements() {
            let pos = p.job.0;
            if !self.flags[pos].guaranteed {
                continue;
            }
            let job = self.jobs[pos];
            overlay.push(Reservation::new(
                overlay.len(),
                job.width,
                job.duration,
                p.start,
            ));
        }
        let instance = ResaInstance::new(self.machines, jobs, overlay)
            .expect("the live substrate accepted every window");
        let placements = self
            .schedule
            .placements()
            .iter()
            .filter(|p| remap[p.job.0] != usize::MAX)
            .map(|p| Placement {
                job: JobId(remap[p.job.0]),
                start: p.start,
            })
            .collect();
        (instance, Schedule::from_placements(placements))
    }

    // -- internals ----------------------------------------------------------

    /// The reservation-and-drain overlay as it is actually in effect:
    /// cancelled/revoked windows truncated to their elapsed prefix,
    /// zero-length windows dropped, ids re-densified across the two
    /// namespaces (reservations first). The single source of truth for both
    /// the replay-equivalence instance and the decision breakpoints — the
    /// two must never diverge. Windows committed by deadline admission are
    /// deliberately absent: they occupy the substrate through their own
    /// placements, and the oracle view ([`ScheduleService::oracle_parts`])
    /// appends them separately.
    fn effective_overlay(&self) -> Vec<Reservation> {
        let reservations = self
            .reservations
            .iter()
            .filter(|r| r.end > r.start)
            .map(|r| (r.width, r.start, r.end));
        let drains = self
            .drains
            .iter()
            .filter(|d| d.end > d.start)
            .map(|d| (d.width, d.start, d.end));
        reservations
            .chain(drains)
            .enumerate()
            .map(|(i, (w, s, e))| Reservation::new(i, w, e.since(s), s))
            .collect()
    }

    /// Recompute the makespan high-water mark from the current placements —
    /// needed after a drain preemption revokes a start (the only operation
    /// that can move `C_max` *down*).
    fn recompute_makespan(&mut self) {
        self.makespan = self
            .schedule
            .placements()
            .iter()
            .map(|p| {
                p.start
                    .saturating_add(self.jobs[self.pos_of(p.job)].duration)
            })
            .max()
            .unwrap_or(Time::ZERO)
            // Retired placements left the schedule but their high-water mark
            // must survive: a preemption can only revoke *live* starts.
            .max(self.retired_metrics.makespan());
    }

    /// Walk virtual time forward to `to`, appending starts and completions
    /// to `effects`. Shared by [`ScheduleService::advance`] and
    /// [`ScheduleService::drain`], which differ only in how they obtain the
    /// (reused) effects buffer. `to` must not be in the past.
    fn advance_into(&mut self, to: Time, effects: &mut Effects) {
        while let Some(at) = self.next_event() {
            if at > to {
                break;
            }
            self.now = at;
            // Drain every event at this instant, then decide once —
            // completions and availability changes act only through the
            // substrate (job windows end by themselves), arrivals join the
            // waiting set in id order. Only *batch-engine-visible* events
            // earn the decision: ordinary completions, arrivals and
            // normalized breakpoints. A committed (deadline-guaranteed)
            // job's completion is an overlay-window edge to the off-line
            // engine — its committed window participates in breakpoint
            // normalization instead, so an edge cancelled by an
            // equal-capacity boundary triggers no decision on either side.
            let mut decide = false;
            while let Some(&Reverse((t, pos))) = self.running.peek() {
                if t != at {
                    break;
                }
                self.running.pop();
                // A drain preemption cannot cheaply delete the victim's heap
                // entry; the completion table is the source of truth, so a
                // mismatching entry is a stale ghost to discard.
                if self.completion_of[pos] == Some(t) {
                    self.completion_of[pos] = None;
                    self.running_count -= 1;
                    self.completed_count += 1;
                    effects.completed.push((self.id_at(pos), t));
                    decide |= !self.flags[pos].guaranteed;
                }
            }
            while let Some(&Reverse((t, pos))) = self.pending.peek() {
                if t != at {
                    break;
                }
                self.pending.pop();
                if self.flags[pos].boosted {
                    self.waiting.push_front(pos);
                } else {
                    self.waiting.push_back(pos);
                }
                decide = true;
            }
            while let Some(&Reverse(t)) = self.breakpoints.peek() {
                if t != at {
                    break;
                }
                self.breakpoints.pop();
                decide = true;
            }
            if decide {
                self.decide_now(effects);
            }
        }
        self.now = to;
    }

    /// The earliest outstanding event instant, if any.
    fn next_event(&self) -> Option<Time> {
        let mut next: Option<Time> = None;
        let mut consider = |t: Option<Time>| {
            next = match (next, t) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        };
        consider(self.running.peek().map(|&Reverse((t, _))| t));
        consider(self.pending.peek().map(|&Reverse((t, _))| t));
        // Breakpoints only matter while someone could be woken by them —
        // but filtering on non-empty waiting here would diverge from the
        // batch engine only in *skipped no-op decisions*, not in schedules;
        // keeping them unconditional also drains the heap as time passes.
        consider(self.breakpoints.peek().map(|&Reverse(t)| t));
        next
    }

    /// Consult the policy at the current instant and apply its starts,
    /// mirroring the batch engine's decision handling (including the
    /// defensive feasibility re-check). No-op when nothing waits.
    fn decide_now(&mut self, effects: &mut Effects) {
        if self.waiting.is_empty() {
            return;
        }
        self.decisions += 1;
        let view = WaitingJobs::new(&self.jobs, &self.waiting);
        match self.policy {
            ReferencePolicy::Fcfs => FcfsPolicy.decide(
                self.now,
                &view,
                &self.substrate,
                &mut self.scratch,
                &mut self.to_start,
            ),
            ReferencePolicy::Easy => EasyPolicy.decide(
                self.now,
                &view,
                &self.substrate,
                &mut self.scratch,
                &mut self.to_start,
            ),
            ReferencePolicy::Greedy => GreedyPolicy.decide(
                self.now,
                &view,
                &self.substrate,
                &mut self.scratch,
                &mut self.to_start,
            ),
        }
        for i in 0..self.to_start.len() {
            let id = self.to_start[i];
            let pos = self.pos_of(id);
            if !self.waiting.contains(pos) {
                continue; // policies must only start waiting jobs
            }
            let job = self.jobs[pos];
            if self.substrate.min_capacity_in(self.now, job.duration) < job.width {
                continue; // defensive: refuse infeasible starts
            }
            self.substrate
                .reserve(self.now, job.duration, job.width)
                .expect("capacity just checked");
            self.schedule.place(id, self.now);
            let completion = self.now.saturating_add(job.duration);
            self.makespan = self.makespan.max(completion);
            self.running.push(Reverse((completion, pos)));
            self.completion_of[pos] = Some(completion);
            self.running_count += 1;
            self.waiting.remove(pos);
            effects.started.push(Placement {
                job: id,
                start: self.now,
            });
        }
    }

    /// Recompute the future availability-change instants from the effective
    /// reservation overlay: the *normalized* profile breakpoints, so
    /// equal-capacity boundaries produce no decision point — exactly the
    /// events the batch engine schedules.
    ///
    /// Allocation-free on the steady path (PR 6): instead of materializing a
    /// `ResourceProfile`, sweep `(time, ±width)` boundary events in the
    /// reused `bp_events` scratch — an instant is a breakpoint iff the net
    /// capacity delta across all windows touching it is non-zero, which is
    /// precisely when the normalized profile has a step there.
    fn refresh_breakpoints(&mut self) {
        self.bp_events.clear();
        for r in self.reservations.iter().filter(|r| r.end > r.start) {
            self.bp_events.push((r.start.ticks(), -i64::from(r.width)));
            self.bp_events.push((r.end.ticks(), i64::from(r.width)));
        }
        for d in self.drains.iter().filter(|d| d.end > d.start) {
            self.bp_events.push((d.start.ticks(), -i64::from(d.width)));
            self.bp_events.push((d.end.ticks(), i64::from(d.width)));
        }
        // Committed (deadline-guaranteed) windows are overlay windows to the
        // off-line engine; they must normalize together with the rest so
        // both sides agree on which instants are decision points.
        for p in self.schedule.placements() {
            let pos = self.pos_of(p.job);
            if !self.flags[pos].guaranteed {
                continue;
            }
            let job = self.jobs[pos];
            let end = p.start.saturating_add(job.duration);
            self.bp_events
                .push((p.start.ticks(), -i64::from(job.width)));
            self.bp_events.push((end.ticks(), i64::from(job.width)));
        }
        self.bp_events.sort_unstable();
        self.breakpoints.clear();
        let mut i = 0;
        while i < self.bp_events.len() {
            let t = self.bp_events[i].0;
            let mut delta = 0i64;
            while i < self.bp_events.len() && self.bp_events[i].0 == t {
                delta += self.bp_events[i].1;
                i += 1;
            }
            if delta != 0 && Time(t) > self.now {
                self.breakpoints.push(Reverse(Time(t)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;

    fn timeline_service(m: u32, policy: ReferencePolicy) -> ScheduleService<AvailabilityTimeline> {
        ScheduleService::new(policy, AvailabilityTimeline::constant(m))
    }

    fn profile_service(m: u32, policy: ReferencePolicy) -> ScheduleService<ResourceProfile> {
        ScheduleService::new(policy, ResourceProfile::constant(m))
    }

    #[test]
    fn submit_starts_immediately_when_it_fits() {
        let mut svc = timeline_service(4, ReferencePolicy::Easy);
        let (id, fx) = svc.submit(2, Dur(5), None).unwrap();
        assert_eq!(id, JobId(0));
        assert_eq!(
            fx.started,
            vec![Placement {
                job: id,
                start: Time(0)
            }]
        );
        assert_eq!(svc.stats().running, 1);
        assert_eq!(svc.decisions(), 1);
    }

    #[test]
    fn blocked_submission_waits_for_completion() {
        let mut svc = timeline_service(4, ReferencePolicy::Fcfs);
        svc.submit(4, Dur(10), None).unwrap();
        let (j1, fx) = svc.submit(2, Dur(3), None).unwrap();
        assert!(fx.started.is_empty(), "no room while J0 runs");
        let fx = svc.advance(Time(10)).unwrap();
        assert_eq!(fx.completed, vec![(JobId(0), Time(10))]);
        assert_eq!(
            fx.started,
            vec![Placement {
                job: j1,
                start: Time(10)
            }]
        );
    }

    #[test]
    fn future_release_arrives_during_advance() {
        let mut svc = timeline_service(4, ReferencePolicy::Greedy);
        let (id, fx) = svc.submit(1, Dur(2), Some(Time(7))).unwrap();
        assert!(fx.started.is_empty());
        assert_eq!(svc.stats().pending, 1);
        let fx = svc.advance(Time(8)).unwrap();
        assert_eq!(
            fx.started,
            vec![Placement {
                job: id,
                start: Time(7)
            }]
        );
        assert_eq!(svc.now(), Time(8));
    }

    #[test]
    fn reservation_blocks_and_cancellation_frees() {
        let mut svc = timeline_service(4, ReferencePolicy::Fcfs);
        let (rid, _) = svc.reserve(4, Dur(100), Time(0)).unwrap();
        let (id, fx) = svc.submit(2, Dur(5), None).unwrap();
        assert!(fx.started.is_empty(), "cluster fully reserved");
        // Cancelling at t=0 frees the whole window (nothing elapsed)...
        svc.advance(Time(1)).unwrap();
        let fx = svc.cancel(rid).unwrap();
        // ...at t=1 the elapsed prefix [0,1) stays, the rest is released and
        // the capacity change wakes the policy.
        assert_eq!(
            fx.started,
            vec![Placement {
                job: id,
                start: Time(1)
            }]
        );
        assert!(matches!(
            svc.cancel(rid),
            Err(ServiceError::ReservationInactive { .. })
        ));
    }

    /// Regression: a job blocked *only* by a not-yet-started reservation
    /// must start when that reservation is cancelled — with the window gone
    /// there is no future event left to wake the policy, so the cancel
    /// itself has to.
    #[test]
    fn cancelling_a_future_reservation_unblocks_waiting_jobs() {
        let mut svc = timeline_service(4, ReferencePolicy::Fcfs);
        let (rid, _) = svc.reserve(4, Dur(10), Time(10)).unwrap();
        let (id, fx) = svc.submit(4, Dur(15), None).unwrap();
        assert!(fx.started.is_empty(), "run overlaps the future window");
        let fx = svc.cancel(rid).unwrap();
        assert_eq!(
            fx.started,
            vec![Placement {
                job: id,
                start: Time(0)
            }]
        );
        let fx = svc.drain();
        assert_eq!(fx.completed, vec![(id, Time(15))]);
        assert_eq!(svc.stats().waiting, 0);
    }

    #[test]
    fn rejected_reservation_rolls_back_cleanly() {
        let mut svc = timeline_service(4, ReferencePolicy::Easy);
        svc.submit(3, Dur(10), None).unwrap();
        let before = svc.substrate.to_profile();
        let err = svc.reserve(2, Dur(5), Time(3)).unwrap_err();
        assert!(matches!(err, ServiceError::ReservationRejected { .. }));
        assert_eq!(svc.substrate.to_profile(), before, "rejection left a trace");
        assert_eq!(svc.reservations().len(), 0);
    }

    #[test]
    fn query_probe_does_not_mutate_state() {
        let mut svc = timeline_service(4, ReferencePolicy::Easy);
        svc.reserve(3, Dur(10), Time(2)).unwrap();
        svc.submit(2, Dur(4), None).unwrap();
        let before = (svc.substrate.to_profile(), svc.snapshot());
        let probe = svc.query(4, Dur(5), None).unwrap().unwrap();
        assert_eq!(probe, Time(12), "behind the reservation and J0");
        let after = (svc.substrate.to_profile(), svc.snapshot());
        assert_eq!(before, after, "query mutated observable state");
        assert!(!svc.substrate.in_transaction());
        // Degenerate probes are answered, not executed.
        assert_eq!(
            svc.query(4, Dur(1), Some(Time(50))).unwrap(),
            Some(Time(50))
        );
        assert!(matches!(
            svc.query(5, Dur(1), None),
            Err(ServiceError::BadWidth { .. })
        ));
    }

    #[test]
    fn validation_errors() {
        let mut svc = timeline_service(4, ReferencePolicy::Fcfs);
        assert!(matches!(
            svc.submit(0, Dur(1), None),
            Err(ServiceError::BadWidth { .. })
        ));
        assert!(matches!(
            svc.submit(1, Dur(0), None),
            Err(ServiceError::ZeroDuration)
        ));
        svc.advance(Time(5)).unwrap();
        assert!(matches!(
            svc.submit(1, Dur(1), Some(Time(3))),
            Err(ServiceError::InThePast { .. })
        ));
        assert!(matches!(
            svc.reserve(1, Dur(1), Time(3)),
            Err(ServiceError::InThePast { .. })
        ));
        assert!(matches!(
            svc.advance(Time(4)),
            Err(ServiceError::InThePast { .. })
        ));
        assert!(matches!(
            svc.cancel(7),
            Err(ServiceError::UnknownReservation { id: 7 })
        ));
    }

    #[test]
    fn stats_and_snapshot_track_the_session() {
        let mut svc = timeline_service(4, ReferencePolicy::Greedy);
        svc.submit(2, Dur(4), None).unwrap();
        svc.submit(2, Dur(2), None).unwrap();
        svc.submit(4, Dur(1), None).unwrap(); // blocked
        svc.advance(Time(2)).unwrap();
        let stats = svc.stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.running, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.waiting, 1);
        assert_eq!(stats.makespan, Time(4));
        let (records, metrics) = svc.snapshot();
        assert_eq!(records.len(), 2, "snapshot lists started jobs");
        assert_eq!(metrics.jobs, 2);
        let fx = svc.drain();
        assert_eq!(fx.completed.len(), 2);
        assert_eq!(svc.stats().completed, 3);
        assert_eq!(svc.stats().makespan, Time(5));
    }

    // -- scenario semantics --------------------------------------------------

    #[test]
    fn inject_preempts_overlapping_jobs_and_restarts_them() {
        let mut svc = timeline_service(4, ReferencePolicy::Fcfs);
        let (j0, _) = svc.submit(4, Dur(10), None).unwrap();
        svc.advance(Time(2)).unwrap();
        // The whole cluster fails during [2, 7): J0 must die.
        let (d, fx) = svc.inject(4, Dur(5), Time(2)).unwrap();
        assert_eq!(d, 0);
        assert!(
            fx.started.is_empty(),
            "nothing can restart inside the drain"
        );
        assert_eq!(svc.last_preempted(), &[j0]);
        assert_eq!(svc.schedule().len(), 0, "the placement was revoked");
        let stats = svc.stats();
        assert_eq!((stats.running, stats.waiting), (0, 1));
        assert_eq!(stats.makespan, Time::ZERO, "makespan recomputed downward");
        // Restart mode: the victim redoes its full 10 ticks after the drain.
        let fx = svc.drain();
        assert_eq!(fx.completed, vec![(j0, Time(17))]);
        assert_eq!(svc.schedule().start_of(j0), Some(Time(7)));
        assert!(svc.schedule().is_valid(&svc.to_instance()));
    }

    #[test]
    fn checkpoint_mode_requeues_only_the_remaining_duration() {
        let mut svc = timeline_service(4, ReferencePolicy::Fcfs);
        svc.set_drain_mode(DrainMode::Checkpoint);
        let (j0, _) = svc.submit(4, Dur(10), None).unwrap();
        svc.advance(Time(2)).unwrap();
        svc.inject(4, Dur(5), Time(2)).unwrap();
        // 2 of 10 ticks were banked; 8 remain, restarting at 7.
        let fx = svc.drain();
        assert_eq!(fx.completed, vec![(j0, Time(15))]);
        assert_eq!(svc.schedule().start_of(j0), Some(Time(7)));
    }

    #[test]
    fn drain_at_a_completion_instant_preempts_nothing() {
        let mut svc = timeline_service(4, ReferencePolicy::Fcfs);
        let (j0, _) = svc.submit(4, Dur(5), None).unwrap();
        // J0 runs [0, 5); a full-cluster drain starting exactly at its
        // completion instant touches no half-open run window.
        let (_, _) = svc.inject(4, Dur(3), Time(5)).unwrap();
        assert!(svc.last_preempted().is_empty());
        let fx = svc.drain();
        assert_eq!(fx.completed, vec![(j0, Time(5))]);
        assert_eq!(svc.schedule().start_of(j0), Some(Time(0)));
    }

    #[test]
    fn inject_kills_the_minimal_most_recent_prefix() {
        // 4 machines: J0 (2 wide) starts at 0, J1 (2 wide) starts at 0.
        // A 2-wide drain needs only one victim — the most recently started
        // (highest id on the tie), J1.
        let mut svc = timeline_service(4, ReferencePolicy::Fcfs);
        let (j0, _) = svc.submit(2, Dur(10), None).unwrap();
        let (j1, _) = svc.submit(2, Dur(10), None).unwrap();
        svc.advance(Time(1)).unwrap();
        let (_, fx) = svc.inject(2, Dur(4), Time(1)).unwrap();
        assert!(fx.started.is_empty());
        assert_eq!(svc.last_preempted(), &[j1]);
        assert_eq!(svc.schedule().start_of(j0), Some(Time(0)), "J0 survives");
        let fx = svc.drain();
        assert!(fx.completed.contains(&(j0, Time(10))));
        assert_eq!(svc.schedule().start_of(j1), Some(Time(5)));
    }

    #[test]
    fn drains_never_preempt_guaranteed_jobs() {
        let mut svc = timeline_service(4, ReferencePolicy::Fcfs);
        let (j0, outcome, _) = svc
            .submit_deadline(4, Dur(10), None, Time(10), AdmissionPolicy::Reject)
            .unwrap();
        assert_eq!(
            outcome,
            DeadlineOutcome::Committed {
                start: Time(0),
                completion: Time(10)
            }
        );
        let before = svc.substrate.to_profile();
        let err = svc.inject(1, Dur(2), Time(3)).unwrap_err();
        assert!(matches!(err, ServiceError::ReservationRejected { .. }));
        assert_eq!(svc.substrate.to_profile(), before, "rejection left a trace");
        assert!(svc.drains().is_empty());
        let fx = svc.drain();
        assert_eq!(fx.completed, vec![(j0, Time(10))], "the guarantee held");
    }

    #[test]
    fn revoke_of_a_partially_elapsed_drain_frees_only_the_future() {
        let mut svc = timeline_service(4, ReferencePolicy::Fcfs);
        let (d, _) = svc.inject(4, Dur(10), Time(0)).unwrap();
        let (j0, fx) = svc.submit(4, Dur(2), None).unwrap();
        assert!(fx.started.is_empty(), "cluster fully drained");
        svc.advance(Time(3)).unwrap();
        // The failure heals at t = 3: [3, 10) is released, [0, 3) stands.
        let fx = svc.revoke(d).unwrap();
        assert_eq!(
            fx.started,
            vec![Placement {
                job: j0,
                start: Time(3)
            }]
        );
        assert_eq!(svc.drains()[0].end, Time(3));
        assert!(svc.drains()[0].revoked);
        assert!(matches!(
            svc.revoke(d),
            Err(ServiceError::DrainInactive { .. })
        ));
        assert!(matches!(
            svc.revoke(9),
            Err(ServiceError::UnknownDrain { id: 9 })
        ));
    }

    #[test]
    fn deadline_exactly_at_the_bound_admits() {
        let mut svc = timeline_service(4, ReferencePolicy::Easy);
        // Earliest completion of a 2×5 job on a free cluster is 5: a due
        // date of exactly 5 admits (half-open windows — the job has finished
        // *by* instant 5), one tick earlier rejects.
        let err = svc
            .submit_deadline(2, Dur(5), None, Time(4), AdmissionPolicy::Reject)
            .unwrap_err();
        assert_eq!(
            err,
            ServiceError::DeadlineUnmet {
                deadline: Time(4),
                bound: Some(Time(5)),
            }
        );
        assert_eq!(svc.stats().submitted, 0, "a rejected job leaves no trace");
        let (_, outcome, _) = svc
            .submit_deadline(2, Dur(5), None, Time(5), AdmissionPolicy::Reject)
            .unwrap();
        assert_eq!(
            outcome,
            DeadlineOutcome::Committed {
                start: Time(0),
                completion: Time(5)
            }
        );
    }

    #[test]
    fn boosted_jobs_jump_the_waiting_queue() {
        let mut svc = timeline_service(4, ReferencePolicy::Fcfs);
        svc.submit(4, Dur(10), None).unwrap();
        let (j1, _) = svc.submit(4, Dur(5), None).unwrap();
        // J2's bound (completion 25 at the earliest) misses its due date;
        // Boost admits it at the *front* of the queue, ahead of J1.
        let (j2, outcome, _) = svc
            .submit_deadline(4, Dur(5), None, Time(12), AdmissionPolicy::Boost)
            .unwrap();
        assert_eq!(outcome, DeadlineOutcome::Boosted);
        assert!(svc.job_flags()[j2.0].boosted);
        assert!(!svc.job_flags()[j2.0].guaranteed);
        svc.drain();
        assert_eq!(svc.schedule().start_of(j2), Some(Time(10)));
        assert_eq!(svc.schedule().start_of(j1), Some(Time(15)));
    }

    #[test]
    fn moldable_submission_concretizes_and_schedules() {
        let mut svc = timeline_service(8, ReferencePolicy::Easy);
        let (id, choice, fx) = svc.submit_moldable(&[1, 2, 4], 12).unwrap();
        assert_eq!((choice.width, choice.duration), (4, Dur(3)));
        assert_eq!(
            fx.started,
            vec![Placement {
                job: id,
                start: Time(0)
            }]
        );
        // The concretized job is an ordinary rigid job from here on.
        assert_eq!(svc.to_instance().jobs()[id.0].width, 4);
        assert!(matches!(
            svc.submit_moldable(&[], 4),
            Err(ServiceError::Moldable { .. })
        ));
        assert!(matches!(
            svc.submit_moldable(&[9], 4),
            Err(ServiceError::Moldable { .. })
        ));
    }

    #[test]
    fn scenario_state_snapshot_roundtrips() {
        let mut svc = timeline_service(4, ReferencePolicy::Fcfs);
        svc.submit(4, Dur(10), None).unwrap();
        svc.submit(2, Dur(3), None).unwrap();
        svc.advance(Time(2)).unwrap();
        svc.inject(4, Dur(3), Time(2)).unwrap();
        svc.submit_deadline(1, Dur(2), Some(Time(20)), Time(30), AdmissionPolicy::Reject)
            .unwrap();
        svc.submit_deadline(4, Dur(9), None, Time(10), AdmissionPolicy::Boost)
            .unwrap();
        let state = svc.state();
        let restored = ScheduleService::restore(
            ReferencePolicy::Fcfs,
            &state,
            AvailabilityTimeline::constant(4),
        );
        assert_eq!(restored.state(), state, "restore must be idempotent");
        let mut live = svc;
        let mut restored = restored;
        live.drain();
        restored.drain();
        assert_eq!(live.schedule(), restored.schedule());
        assert_eq!(live.stats(), restored.stats());
    }

    /// The scripted session of the golden CLI tests, driven through the
    /// library API on both substrates: identical schedules, and the session
    /// replayed off-line through the batch engine reproduces them.
    #[test]
    fn scripted_session_replays_offline_on_both_substrates() {
        fn script<C: CapacityQuery + Speculate>(svc: &mut ScheduleService<C>) {
            svc.reserve(2, Dur(6), Time(4)).unwrap();
            svc.reserve(1, Dur(3), Time(20)).unwrap();
            svc.submit(3, Dur(5), None).unwrap();
            svc.submit(2, Dur(4), None).unwrap();
            svc.query(4, Dur(2), None).unwrap();
            svc.advance(Time(5)).unwrap();
            svc.submit(4, Dur(3), None).unwrap();
            svc.submit(1, Dur(8), Some(Time(9))).unwrap();
            svc.advance(Time(12)).unwrap();
            svc.submit(2, Dur(2), None).unwrap();
            svc.drain();
        }
        for policy in [
            ReferencePolicy::Fcfs,
            ReferencePolicy::Easy,
            ReferencePolicy::Greedy,
        ] {
            let mut tl = timeline_service(4, policy);
            let mut pf = profile_service(4, policy);
            script(&mut tl);
            script(&mut pf);
            assert_eq!(
                tl.schedule(),
                pf.schedule(),
                "substrates diverged under {}",
                policy.name()
            );
            let offline = Simulator::new(tl.to_instance()).run_reference_policy(policy);
            assert_eq!(
                offline.schedule,
                *tl.schedule(),
                "off-line replay diverged under {}",
                policy.name()
            );
            assert!(tl.schedule().is_valid(&tl.to_instance()));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::engine::Simulator;
    use proptest::prelude::*;

    /// One request of a generated session. Reservations are fixed up front
    /// (see the module docs for why mid-run overlay changes legitimately
    /// diverge from an off-line replay that knows them from t = 0).
    #[derive(Debug, Clone)]
    enum Req {
        Submit { width: u32, dur: u64, delay: u64 },
        Query { width: u32, dur: u64 },
        Advance { by: u64 },
    }

    /// Raw request tuples `(kind, width, dur, extra)`; decoded by
    /// [`decode`]. The vendored proptest has no `prop_oneof`, so the choice
    /// of request kind is a plain generated discriminant.
    type RawSession = (u32, Vec<(u32, u64, u64)>, Vec<(u32, u32, u64, u64)>);

    fn arb_session() -> impl Strategy<Value = RawSession> {
        (2u32..=8).prop_flat_map(|m| {
            let reservations =
                proptest::collection::vec((1u32..=m, 1u64..=8, 0u64..=40), 0usize..=3);
            let reqs =
                proptest::collection::vec((0u32..=2, 1u32..=m, 1u64..=9, 0u64..=15), 1usize..=20);
            (Just(m), reservations, reqs)
        })
    }

    fn decode(raw: &(u32, u32, u64, u64)) -> Req {
        let &(kind, width, dur, extra) = raw;
        match kind {
            0 => Req::Submit {
                width,
                dur,
                delay: extra % 7,
            },
            1 => Req::Query { width, dur },
            _ => Req::Advance { by: extra },
        }
    }

    /// Drive one session on both substrates, lock-step comparing every
    /// response, then drain and replay off-line through the batch engine.
    /// Returns a description of the first divergence, if any.
    fn check_session(
        m: u32,
        reservations: &[(u32, u64, u64)],
        raw_reqs: &[(u32, u32, u64, u64)],
        policy: ReferencePolicy,
    ) -> Result<(), String> {
        let reqs: Vec<Req> = raw_reqs.iter().map(decode).collect();
        let mut tl = ScheduleService::new(policy, AvailabilityTimeline::constant(m));
        let mut pf = ScheduleService::new(policy, ResourceProfile::constant(m));
        for (i, &(w, d, s)) in reservations.iter().enumerate() {
            let rt = tl.reserve(w, Dur(d), Time(s));
            let rp = pf.reserve(w, Dur(d), Time(s));
            if rt.is_ok() != rp.is_ok() {
                return Err(format!("reservation {i} diverged: {rt:?} vs {rp:?}"));
            }
        }
        for req in &reqs {
            let same = match *req {
                Req::Submit { width, dur, delay } => {
                    let release = (delay > 0).then(|| Time(tl.now().ticks() + delay));
                    let a = tl.submit(width, Dur(dur), release).unwrap();
                    let b = pf.submit(width, Dur(dur), release).unwrap();
                    a == b
                }
                Req::Query { width, dur } => {
                    tl.query(width, Dur(dur), None).unwrap()
                        == pf.query(width, Dur(dur), None).unwrap()
                }
                Req::Advance { by } => {
                    let to = Time(tl.now().ticks() + by);
                    tl.advance(to).unwrap() == pf.advance(to).unwrap()
                }
            };
            if !same {
                return Err(format!("substrates diverged on {req:?}"));
            }
        }
        tl.drain();
        pf.drain();
        if tl.schedule() != pf.schedule() {
            return Err("substrates diverged after drain".to_string());
        }
        let instance = tl.to_instance();
        let offline = Simulator::new(instance.clone()).run_reference_policy(policy);
        if &offline.schedule != tl.schedule() {
            return Err(format!(
                "off-line replay diverged under {}: {:?} vs {:?}",
                policy.name(),
                offline.schedule,
                tl.schedule()
            ));
        }
        if !tl.schedule().is_valid(&instance) {
            return Err("service schedule is infeasible".to_string());
        }
        Ok(())
    }

    /// Apply one decoded request to a service, returning a comparable
    /// digest of the response.
    fn apply_req<C: CapacityQuery + Speculate>(svc: &mut ScheduleService<C>, req: &Req) -> String {
        match *req {
            Req::Submit { width, dur, delay } => {
                let release = (delay > 0).then(|| Time(svc.now().ticks() + delay));
                format!("{:?}", svc.submit(width, Dur(dur), release))
            }
            Req::Query { width, dur } => format!("{:?}", svc.query(width, Dur(dur), None)),
            Req::Advance { by } => {
                let to = Time(svc.now().ticks() + by);
                format!("{:?}", svc.advance(to))
            }
        }
    }

    /// Raw scenario session: machines, drain mode bit, up-front overlay ops
    /// `(kind, width, dur, start)` applied at t = 0, then free requests
    /// `(kind, width, dur, extra)`.
    type RawScenario = (
        u32,
        u32,
        Vec<(u32, u32, u64, u64)>,
        Vec<(u32, u32, u64, u64)>,
    );

    fn arb_scenario(req_kinds: u32) -> impl Strategy<Value = RawScenario> {
        (2u32..=8).prop_flat_map(move |m| {
            let upfront =
                proptest::collection::vec((0u32..=3, 1u32..=m, 1u64..=8, 0u64..=40), 0usize..=5);
            let reqs = proptest::collection::vec(
                (0u32..=req_kinds, 1u32..=m, 1u64..=9, 0u64..=15),
                1usize..=16,
            );
            (Just(m), 0u32..=1, upfront, reqs)
        })
    }

    /// Apply one up-front (t = 0) scenario op: reserve, inject, revoke, or a
    /// guaranteed deadline submission. Returns a comparable digest.
    fn apply_upfront<C: CapacityQuery + Speculate>(
        svc: &mut ScheduleService<C>,
        &(kind, width, dur, start): &(u32, u32, u64, u64),
    ) -> String {
        match kind % 4 {
            0 => format!("{:?}", svc.reserve(width, Dur(dur), Time(start))),
            1 => format!("{:?}", svc.inject(width, Dur(dur), Time(start))),
            2 => {
                let n = svc.drains().len();
                if n == 0 {
                    "no drains".to_string()
                } else {
                    format!("{:?}", svc.revoke(start as usize % n))
                }
            }
            _ => format!(
                "{:?}",
                svc.submit_deadline(
                    width,
                    Dur(dur),
                    None,
                    Time(start + dur),
                    AdmissionPolicy::Reject,
                )
            ),
        }
    }

    /// Apply one decoded scenario request (the [`Req`] kinds plus inject /
    /// revoke / deadline / moldable), returning a comparable digest.
    fn apply_scenario_req<C: CapacityQuery + Speculate>(
        svc: &mut ScheduleService<C>,
        &(kind, width, dur, extra): &(u32, u32, u64, u64),
    ) -> String {
        let now = svc.now().ticks();
        match kind % 7 {
            0 => {
                let release = (extra % 7 > 0).then(|| Time(now + extra % 7));
                format!("{:?}", svc.submit(width, Dur(dur), release))
            }
            1 => format!("{:?}", svc.query(width, Dur(dur), None)),
            2 => format!("{:?}", svc.advance(Time(now + extra))),
            3 => format!("{:?}", svc.inject(width, Dur(dur), Time(now + extra % 5))),
            4 => {
                let n = svc.drains().len();
                if n == 0 {
                    "no drains".to_string()
                } else {
                    format!("{:?}", svc.revoke(extra as usize % n))
                }
            }
            5 => {
                let admission = if extra & 1 == 0 {
                    AdmissionPolicy::Reject
                } else {
                    AdmissionPolicy::Boost
                };
                let delay = extra % 5;
                let release = (delay > 0).then(|| Time(now + delay));
                // Slack 0 probes the boundary: deadline == release + dur,
                // which commits exactly when the substrate is free there.
                let deadline = Time(now + delay + dur + extra % 9);
                format!(
                    "{:?}",
                    svc.submit_deadline(width, Dur(dur), release, deadline, admission)
                )
            }
            _ => {
                let menu = [width.div_ceil(2), width];
                format!("{:?}", svc.submit_moldable(&menu, dur * width as u64))
            }
        }
    }

    /// Drive one phased scenario session (all overlay mutations — reserve /
    /// inject / revoke / committed deadlines — declared up front, then
    /// ordinary and moldable traffic) on both substrates, lock-step, and
    /// check the drained outcome against the off-line batch engine via
    /// [`ScheduleService::oracle_parts`].
    fn check_scenario_session(
        m: u32,
        upfront: &[(u32, u32, u64, u64)],
        raw_reqs: &[(u32, u32, u64, u64)],
        policy: ReferencePolicy,
    ) -> Result<(), String> {
        let mut tl = ScheduleService::new(policy, AvailabilityTimeline::constant(m));
        let mut pf = ScheduleService::new(policy, ResourceProfile::constant(m));
        for (i, op) in upfront.iter().enumerate() {
            let a = apply_upfront(&mut tl, op);
            let b = apply_upfront(&mut pf, op);
            if a != b {
                return Err(format!("up-front op {i} diverged: {a} vs {b}"));
            }
        }
        for (i, raw) in raw_reqs.iter().enumerate() {
            // Phase 2 sticks to submit / query / advance / moldable so the
            // overlay stays as declared at t = 0 (the oracle's contract).
            let kind = [0, 1, 2, 6][raw.0 as usize % 4];
            let raw = (kind, raw.1, raw.2, raw.3);
            let a = apply_scenario_req(&mut tl, &raw);
            let b = apply_scenario_req(&mut pf, &raw);
            if a != b {
                return Err(format!("request {i} diverged: {a} vs {b}"));
            }
        }
        tl.drain();
        pf.drain();
        if tl.schedule() != pf.schedule() {
            return Err("substrates diverged after drain".to_string());
        }
        let (instance, schedule) = tl.oracle_parts();
        let offline = Simulator::new(instance.clone()).run_reference_policy(policy);
        if offline.schedule != schedule {
            return Err(format!(
                "off-line replay diverged under {}: {:?} vs {:?}",
                policy.name(),
                offline.schedule,
                schedule
            ));
        }
        if !schedule.is_valid(&instance) {
            return Err("oracle schedule is infeasible".to_string());
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any generated session (overlay fixed up front, then submits /
        /// probes / time advances in adversarial order), drained and
        /// replayed as an off-line instance through the batch engine,
        /// yields the identical schedule — on both substrates, under every
        /// policy.
        #[test]
        fn sessions_replay_offline_identically(session in arb_session()) {
            let (m, reservations, reqs) = session;
            for policy in [
                ReferencePolicy::Fcfs,
                ReferencePolicy::Easy,
                ReferencePolicy::Greedy,
            ] {
                let outcome = check_session(m, &reservations, &reqs, policy);
                prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
            }
        }

        /// Capturing [`ServiceState`] at *any* request boundary and
        /// restoring it onto a fresh substrate yields a service that answers
        /// every remaining request identically and drains to the identical
        /// schedule — the foundation the journal's snapshot compaction
        /// stands on.
        #[test]
        fn state_restore_roundtrip(session in arb_session(), cut in 0usize..=20) {
            let (m, reservations, raw_reqs) = session;
            let reqs: Vec<Req> = raw_reqs.iter().map(decode).collect();
            let cut = cut.min(reqs.len());
            for policy in [
                ReferencePolicy::Fcfs,
                ReferencePolicy::Easy,
                ReferencePolicy::Greedy,
            ] {
                let mut live =
                    ScheduleService::new(policy, AvailabilityTimeline::constant(m));
                for &(w, d, s) in &reservations {
                    let _ = live.reserve(w, Dur(d), Time(s));
                }
                for req in &reqs[..cut] {
                    apply_req(&mut live, req);
                }
                let state = live.state();
                let mut restored = ScheduleService::restore(
                    policy,
                    &state,
                    AvailabilityTimeline::constant(m),
                );
                prop_assert_eq!(restored.state(), state, "restore must be idempotent");
                for (i, req) in reqs[cut..].iter().enumerate() {
                    let a = apply_req(&mut live, req);
                    let b = apply_req(&mut restored, req);
                    prop_assert_eq!(a, b, "request {} diverged after restore", cut + i);
                }
                live.drain();
                restored.drain();
                prop_assert_eq!(live.schedule(), restored.schedule());
                prop_assert_eq!(live.stats(), restored.stats());
            }
        }

        /// Scenario sessions whose overlay mutations (reservations, drains,
        /// revokes, committed deadline jobs) are declared up front reproduce
        /// the off-line batch engine bit for bit on both substrates, under
        /// every policy — the PR 5 / PR 7 oracle extended to drains,
        /// guarantees, and moldable jobs.
        #[test]
        fn scenario_sessions_replay_offline_identically(session in arb_scenario(3)) {
            let (m, _, upfront, reqs) = session;
            for policy in [
                ReferencePolicy::Fcfs,
                ReferencePolicy::Easy,
                ReferencePolicy::Greedy,
            ] {
                let outcome = check_scenario_session(m, &upfront, &reqs, policy);
                prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
            }
        }

        /// Free interleavings of every service op — including mid-run
        /// drains, revokes, deadline admission under both policies, and
        /// moldable submissions — stay lock-step identical across
        /// substrates, drain to a feasible schedule, and never miss an
        /// accepted deadline. (Mid-run preemption legitimately diverges from
        /// an up-front off-line replay, so the oracle here is the *other
        /// substrate* plus the guarantees themselves.)
        #[test]
        fn scenario_interleavings_agree_and_keep_guarantees(session in arb_scenario(6)) {
            let (m, mode, upfront, reqs) = session;
            let mode = if mode == 0 { DrainMode::Restart } else { DrainMode::Checkpoint };
            for policy in [
                ReferencePolicy::Fcfs,
                ReferencePolicy::Easy,
                ReferencePolicy::Greedy,
            ] {
                let mut tl = ScheduleService::new(policy, AvailabilityTimeline::constant(m));
                let mut pf = ScheduleService::new(policy, ResourceProfile::constant(m));
                tl.set_drain_mode(mode);
                pf.set_drain_mode(mode);
                for (i, op) in upfront.iter().enumerate() {
                    let a = apply_upfront(&mut tl, op);
                    let b = apply_upfront(&mut pf, op);
                    prop_assert_eq!(a, b, "up-front op {} diverged", i);
                }
                for (i, raw) in reqs.iter().enumerate() {
                    let a = apply_scenario_req(&mut tl, raw);
                    let b = apply_scenario_req(&mut pf, raw);
                    prop_assert_eq!(a, b, "request {} diverged", i);
                }
                tl.drain();
                pf.drain();
                prop_assert_eq!(tl.schedule(), pf.schedule());
                prop_assert_eq!(tl.stats(), pf.stats());
                let instance = tl.to_instance();
                prop_assert!(
                    tl.schedule().is_valid(&instance),
                    "drained scenario schedule is infeasible"
                );
                // The admission guarantee: every committed job finished by
                // its due date, no matter what failed around it.
                for (pos, flags) in tl.job_flags().iter().enumerate() {
                    if flags.guaranteed {
                        let deadline = flags.deadline.expect("guaranteed implies a deadline");
                        let start = tl
                            .schedule()
                            .start_of(JobId(pos))
                            .expect("guaranteed job must stay placed");
                        let completion = start.saturating_add(instance.jobs()[pos].duration);
                        prop_assert!(
                            completion <= deadline,
                            "guaranteed job {} missed its deadline: {:?} > {:?}",
                            pos, completion, deadline
                        );
                    }
                }
            }
        }

        /// [`ServiceState`] round-trips at any boundary of a full scenario
        /// session: drains, flags, and the persisted waiting-queue order all
        /// survive, and the restored service answers every remaining request
        /// identically under both drain modes.
        #[test]
        fn scenario_state_restore_roundtrip(session in arb_scenario(6), cut in 0usize..=16) {
            let (m, mode, upfront, reqs) = session;
            let mode = if mode == 0 { DrainMode::Restart } else { DrainMode::Checkpoint };
            let cut = cut.min(reqs.len());
            for policy in [
                ReferencePolicy::Fcfs,
                ReferencePolicy::Easy,
                ReferencePolicy::Greedy,
            ] {
                let mut live = ScheduleService::new(policy, AvailabilityTimeline::constant(m));
                live.set_drain_mode(mode);
                for op in &upfront {
                    apply_upfront(&mut live, op);
                }
                for raw in &reqs[..cut] {
                    apply_scenario_req(&mut live, raw);
                }
                let state = live.state();
                let mut restored = ScheduleService::restore(
                    policy,
                    &state,
                    AvailabilityTimeline::constant(m),
                );
                restored.set_drain_mode(mode);
                prop_assert_eq!(restored.state(), state, "restore must be idempotent");
                for (i, raw) in reqs[cut..].iter().enumerate() {
                    let a = apply_scenario_req(&mut live, raw);
                    let b = apply_scenario_req(&mut restored, raw);
                    prop_assert_eq!(a, b, "request {} diverged after restore", cut + i);
                }
                live.drain();
                restored.drain();
                prop_assert_eq!(live.schedule(), restored.schedule());
                prop_assert_eq!(live.stats(), restored.stats());
            }
        }
    }
}

#[cfg(test)]
mod retirement_tests {
    use super::*;
    use crate::stream::VecSink;

    fn service(m: u32) -> ScheduleService<AvailabilityTimeline> {
        ScheduleService::new(ReferencePolicy::Easy, AvailabilityTimeline::constant(m))
    }

    #[test]
    fn retire_with_nothing_completed_returns_zero() {
        let mut svc = service(4);
        let mut sink = VecSink::default();
        assert_eq!(svc.retire_completed(&mut sink), 0);
        svc.submit(2, Dur(5), None).unwrap();
        assert_eq!(
            svc.retire_completed(&mut sink),
            0,
            "the job is still running"
        );
        assert!(sink.records.is_empty());
        assert_eq!(svc.retired_records(), 0);
    }

    /// A retiring session reports the same stats and *bit-identical* snapshot
    /// metrics as a never-retired twin fed the same requests, and the sink
    /// records plus the live snapshot records reassemble the twin's full
    /// record set — on every policy.
    #[test]
    fn retirement_preserves_snapshot_and_stats() {
        for policy in [
            ReferencePolicy::Fcfs,
            ReferencePolicy::Easy,
            ReferencePolicy::Greedy,
        ] {
            let mut retiring = ScheduleService::new(policy, AvailabilityTimeline::constant(4));
            let mut twin = ScheduleService::new(policy, AvailabilityTimeline::constant(4));
            let mut sink = VecSink::default();
            // A saturating mix: widths cycle so jobs queue up, durations
            // stagger so completions interleave with arrivals.
            for i in 0..40u64 {
                let width = 1 + (i % 4) as u32;
                let duration = Dur(1 + (i * 7) % 9);
                let release = Some(Time(i));
                retiring.submit(width, duration, release).unwrap();
                twin.submit(width, duration, release).unwrap();
                if i % 5 == 4 {
                    retiring.advance(Time(i)).unwrap();
                    twin.advance(Time(i)).unwrap();
                    retiring.retire_completed(&mut sink);
                }
            }
            retiring.drain();
            twin.drain();
            retiring.retire_completed(&mut sink);
            assert!(
                retiring.retired_records() > 0,
                "the mix must retire something"
            );
            assert_eq!(retiring.stats(), twin.stats(), "{policy:?}");
            let (live_records, metrics) = retiring.snapshot();
            let (twin_records, twin_metrics) = twin.snapshot();
            assert_eq!(
                metrics, twin_metrics,
                "{policy:?}: merged metrics must match"
            );
            let mut all = sink.records.clone();
            all.extend(live_records);
            all.sort_unstable_by_key(|r| (r.started, r.job));
            assert_eq!(all, twin_records, "{policy:?}: records must reassemble");
        }
    }

    #[test]
    fn compaction_shrinks_the_catalog_and_rebases_the_queue() {
        let mut svc = service(2);
        let mut sink = VecSink::default();
        // Width-2 jobs serialize: one runs, the rest wait in the queue.
        for _ in 0..6 {
            svc.submit(2, Dur(3), None).unwrap();
        }
        svc.advance(Time(6)).unwrap();
        assert_eq!(svc.retire_completed(&mut sink), 2);
        assert_eq!(svc.retired_records(), 2);
        assert_eq!(
            sink.records.iter().map(|r| r.job).collect::<Vec<_>>(),
            vec![JobId(0), JobId(1)]
        );
        // The catalog now holds only the four live jobs; the waiting queue
        // was rebased across the compaction and keeps scheduling correctly.
        assert_eq!(svc.jobs.len(), 4);
        svc.drain();
        assert_eq!(svc.retire_completed(&mut sink), 4);
        assert_eq!(
            svc.jobs.len(),
            0,
            "a fully drained session compacts to empty"
        );
        let (records, metrics) = svc.snapshot();
        assert!(records.is_empty());
        assert_eq!(metrics.jobs, 6);
        assert_eq!(metrics.makespan, Time(18));
        assert_eq!(svc.stats().submitted, 6);
        let ids: Vec<JobId> = sink.records.iter().map(|r| r.job).collect();
        assert_eq!(ids, (0..6).map(JobId).collect::<Vec<_>>());
    }

    #[test]
    fn ids_keep_counting_past_compaction() {
        let mut svc = service(2);
        let mut sink = VecSink::default();
        svc.submit(2, Dur(2), None).unwrap();
        svc.submit(2, Dur(2), None).unwrap();
        svc.advance(Time(2)).unwrap();
        assert_eq!(svc.retire_completed(&mut sink), 1);
        let (id, _) = svc.submit(1, Dur(1), None).unwrap();
        assert_eq!(id, JobId(2), "ids are global, not catalog positions");
        svc.drain();
        svc.retire_completed(&mut sink);
        let ids: Vec<usize> = sink.records.iter().map(|r| r.job.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    /// A drain preemption leaves a stale ghost entry in the running heap;
    /// retirement after the re-run must still be correct in both modes.
    #[test]
    fn retirement_after_a_drain_preemption() {
        for mode in [DrainMode::Restart, DrainMode::Checkpoint] {
            let mut svc = service(2);
            svc.set_drain_mode(mode);
            let mut sink = VecSink::default();
            svc.submit(2, Dur(10), None).unwrap();
            svc.advance(Time(2)).unwrap();
            svc.inject(2, Dur(3), Time(2)).unwrap();
            svc.drain();
            assert_eq!(svc.retire_completed(&mut sink), 1, "{mode:?}");
            let (records, metrics) = svc.snapshot();
            assert!(records.is_empty());
            assert_eq!(metrics.jobs, 1);
            assert_eq!(sink.records[0].job, JobId(0));
            assert_eq!(
                svc.jobs.len(),
                0,
                "{mode:?}: catalog compacts after the re-run"
            );
        }
    }

    #[test]
    #[should_panic(expected = "retiring session cannot be checkpointed")]
    fn state_refuses_a_retiring_session() {
        let mut svc = service(2);
        let mut sink = VecSink::default();
        svc.submit(1, Dur(1), None).unwrap();
        svc.drain();
        assert_eq!(svc.retire_completed(&mut sink), 1);
        let _ = svc.state();
    }
}
