//! # resa-exact
//!
//! Exact solvers and complexity reductions supporting the reproduction of
//! *"Analysis of Scheduling Algorithms with Reservations"* (IPDPS 2007):
//!
//! * [`branch_bound::ExactSolver`] — optimal makespan for small
//!   RIGID/RESASCHEDULING instances by branch-and-bound over earliest-fit
//!   insertion orders; used to measure true performance ratios in the
//!   benchmark harness;
//! * [`three_partition`] — 3-PARTITION instances, an exact backtracking
//!   solver and a generator of yes-instances;
//! * [`partition`] — the pseudo-polynomial subset-sum algorithm for
//!   two-machine sequential scheduling (footnote 1 of the paper);
//! * [`reduction`] — the Theorem-1 constructions: 3-PARTITION →
//!   RESASCHEDULING with one machine (Figure 1), and RIGIDSCHEDULING →
//!   RESASCHEDULING with a single huge reservation.
//!
//! ```
//! use resa_core::prelude::*;
//! use resa_exact::branch_bound::ExactSolver;
//!
//! let instance = ResaInstanceBuilder::new(4)
//!     .job(3, 2u64)
//!     .job(2, 2u64)
//!     .job(1, 2u64)
//!     .job(2, 2u64)
//!     .build()
//!     .unwrap();
//! let result = ExactSolver::new().solve(&instance);
//! assert!(result.optimal);
//! assert_eq!(result.makespan, Time(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch_bound;
pub mod partition;
pub mod reduction;
pub mod three_partition;

/// Convenient glob import.
pub mod prelude {
    pub use crate::branch_bound::{ExactResult, ExactSolver};
    pub use crate::partition::{
        best_split, optimal_two_machine_makespan, optimal_two_machine_schedule, partition_exists,
    };
    pub use crate::reduction::{
        extract_partition, rigid_to_single_reservation, three_partition_to_resa,
        ThreePartitionReduction,
    };
    pub use crate::three_partition::{satisfiable_instance, Partition, ThreePartition};
}

#[cfg(test)]
mod proptests {
    use crate::branch_bound::ExactSolver;
    use proptest::prelude::*;
    use resa_algos::prelude::*;
    use resa_core::prelude::*;

    fn arb_small_instance() -> impl Strategy<Value = ResaInstance> {
        (2u32..=5, 1usize..=6, 0usize..=2).prop_flat_map(|(m, n_jobs, n_res)| {
            let jobs = proptest::collection::vec((1u32..=m, 1u64..=6), n_jobs);
            let reservations = proptest::collection::vec((1u32..=m, 1u64..=4), n_res);
            (Just(m), jobs, reservations).prop_map(|(m, jobs, reservations)| {
                let mut b = ResaInstanceBuilder::new(m);
                for (w, p) in jobs {
                    b = b.job(w, p);
                }
                for (i, (w, p)) in reservations.into_iter().enumerate() {
                    b = b.reservation(w, p, (i as u64) * 5);
                }
                b.build().expect("constructed instances are feasible")
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The exact solver is sandwiched between the certified lower bound
        /// and every heuristic, and its schedule is feasible.
        #[test]
        fn exact_is_between_lower_bound_and_heuristics(inst in arb_small_instance()) {
            let result = ExactSolver::new().solve(&inst);
            prop_assert!(result.optimal);
            prop_assert!(result.schedule.is_valid(&inst));
            let lb = lower_bound(&inst).unwrap();
            prop_assert!(result.makespan >= lb);
            for s in resa_algos::all_schedulers() {
                prop_assert!(
                    s.makespan(&inst) >= result.makespan,
                    "{} beat the optimum",
                    s.name()
                );
            }
        }

        /// Node-for-node equivalence: the clone-free transactional search
        /// expands exactly the same number of nodes to the same peak depth
        /// and returns the same schedule as the retained clone-per-node
        /// reference, on random instances with reservations — under both
        /// an unlimited and a tight node budget.
        #[test]
        fn transactional_search_matches_reference_node_for_node(
            inst in arb_small_instance(),
            budget in 1u64..200,
        ) {
            for solver in [ExactSolver::new(), ExactSolver::with_node_budget(budget)] {
                let fast = solver.solve(&inst);
                let slow = solver.solve_reference(&inst);
                prop_assert_eq!(fast.makespan, slow.makespan);
                prop_assert_eq!(&fast.schedule, &slow.schedule);
                prop_assert_eq!(fast.nodes, slow.nodes);
                prop_assert_eq!(fast.peak_depth, slow.peak_depth);
                prop_assert_eq!(fast.optimal, slow.optimal);
                prop_assert!(fast.schedule.is_valid(&inst));
            }
        }

        /// On reservation-free instances LSRC respects Graham's bound w.r.t.
        /// the true optimum: C_LSRC ≤ (2 − 1/m)·C*.
        #[test]
        fn graham_bound_vs_true_optimum(inst in arb_small_instance()) {
            if inst.n_reservations() == 0 {
                let opt = ExactSolver::new().solve(&inst);
                prop_assert!(opt.optimal);
                let lsrc = Lsrc::new().makespan(&inst).ticks() as f64;
                let m = inst.machines() as f64;
                prop_assert!(lsrc <= (2.0 - 1.0 / m) * opt.makespan.ticks() as f64 + 1e-9);
            }
        }
    }
}
