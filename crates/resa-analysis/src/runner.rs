//! The experiment runner: one fan-out point for every sweep.
//!
//! The paper's experimental sections need thousands of simulated runs per
//! figure; this module turns each figure/table sweep into a list of
//! self-contained cells and maps them either sequentially or across all
//! cores (through the workspace's `rayon` stand-in, which executes on scoped
//! OS threads).
//!
//! **Determinism.** Parallel and sequential runs produce *identical* rows in
//! *identical* order: every cell derives its randomness from its own seed
//! (never from shared mutable state or the thread schedule), and the
//! parallel map preserves input order. [`stream_seed`] derives independent
//! per-cell streams from a root seed with a SplitMix64 step, so seed `s`,
//! cell `i` always sees the same stream no matter which thread runs it.

use crate::figures::{
    figure1_cell, figure1_witness, figure2_cell, figure3_cell, figure4_series, Fig1Row, Fig2Row,
    Fig3Row, Fig4Row,
};
use rayon::prelude::*;

/// Derive the `index`-th deterministic RNG stream from `root` (SplitMix64):
/// statistically independent streams for parallel cells, reproducible across
/// runs and thread counts.
pub fn stream_seed(root: u64, index: u64) -> u64 {
    let mut z = root.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Sequential-or-parallel driver for figure and table sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentRunner {
    parallel: bool,
}

impl ExperimentRunner {
    /// Fan cells out across every available core.
    pub fn parallel() -> Self {
        ExperimentRunner { parallel: true }
    }

    /// Run cells in order on the calling thread (the reference mode the
    /// parallel mode is asserted against).
    pub fn sequential() -> Self {
        ExperimentRunner { parallel: false }
    }

    /// Whether this runner fans out.
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// Map `f` over `items`, preserving input order. The unit of work is one
    /// item; `f` must be self-contained (see the module docs on
    /// determinism).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if self.parallel {
            items.par_iter().map(f).collect()
        } else {
            items.iter().map(f).collect()
        }
    }

    /// Map `f` over a list of seeds — the common shape of the table sweeps.
    pub fn map_seeds<R, F>(&self, seeds: &[u64], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(u64) -> R + Sync,
    {
        self.map(seeds, |&s| f(s))
    }

    /// The Figure-1 series (3-PARTITION reduction): one cell per `k`, plus
    /// the unsatisfiable witness.
    pub fn figure1(&self, ks: &[usize], target: u64, rho: u64, seed: u64) -> Vec<Fig1Row> {
        let mut rows = self.map(ks, |&k| figure1_cell(k, target, rho, seed));
        rows.extend(figure1_witness(rho));
        rows
    }

    /// The Figure-2 series (non-increasing staircases): one cell per
    /// `(machines, seed)` pair.
    pub fn figure2(
        &self,
        machines_list: &[u32],
        jobs_per_instance: usize,
        seeds: &[u64],
    ) -> Vec<Fig2Row> {
        let cells: Vec<(u32, u64)> = machines_list
            .iter()
            .flat_map(|&m| seeds.iter().map(move |&s| (m, s)))
            .collect();
        self.map(&cells, |&(m, s)| figure2_cell(m, jobs_per_instance, s))
    }

    /// The Figure-3 series (Proposition-2 adversaries): one cell per `k`.
    pub fn figure3(&self, ks: &[u32]) -> Vec<Fig3Row> {
        self.map(ks, |&k| figure3_cell(k))
    }

    /// The Figure-4 series (closed-form bound curves). Pure arithmetic — not
    /// worth fanning out, included so a sweep can drive all four figures
    /// through one runner.
    pub fn figure4(&self, min_alpha: f64, points: usize) -> Vec<Fig4Row> {
        figure4_series(min_alpha, points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_equals_sequential_on_every_figure() {
        let seq = ExperimentRunner::sequential();
        let par = ExperimentRunner::parallel();
        assert!(par.is_parallel() && !seq.is_parallel());

        let f1s = seq.figure1(&[2, 3], 10, 2, 1);
        let f1p = par.figure1(&[2, 3], 10, 2, 1);
        assert_eq!(f1s.len(), f1p.len());
        for (a, b) in f1s.iter().zip(&f1p) {
            assert_eq!((a.k, a.optimal, a.lsrc), (b.k, b.optimal, b.lsrc));
        }

        let f2s = seq.figure2(&[6, 10], 8, &[1, 2]);
        let f2p = par.figure2(&[6, 10], 8, &[1, 2]);
        assert_eq!(f2s.len(), 4);
        for (a, b) in f2s.iter().zip(&f2p) {
            assert_eq!(
                (a.machines, a.lsrc, a.reference),
                (b.machines, b.lsrc, b.reference)
            );
            assert_eq!(a.ratio.to_bits(), b.ratio.to_bits());
        }

        let f3s = seq.figure3(&[3, 4, 5]);
        let f3p = par.figure3(&[3, 4, 5]);
        for (a, b) in f3s.iter().zip(&f3p) {
            assert_eq!((a.k, a.lsrc, a.optimal), (b.k, b.lsrc, b.optimal));
        }
    }

    #[test]
    fn map_preserves_order_and_results() {
        let items: Vec<u64> = (0..500).collect();
        let seq = ExperimentRunner::sequential().map(&items, |&x| x * x);
        let par = ExperimentRunner::parallel().map(&items, |&x| x * x);
        assert_eq!(seq, par);
    }

    #[test]
    fn stream_seeds_are_distinct_and_stable() {
        let a = stream_seed(42, 0);
        let b = stream_seed(42, 1);
        let c = stream_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, stream_seed(42, 0), "streams are reproducible");
    }
}
