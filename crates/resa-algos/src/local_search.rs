//! Local-search improvement of list schedules.
//!
//! The conclusion of the paper asks whether *variants of list scheduling can
//! improve the upper bound*, e.g. by ordering the list by decreasing
//! durations. This module goes one step further and implements a simple —
//! but guarantee-preserving — improvement pass on top of any base scheduler:
//!
//! 1. run the base scheduler;
//! 2. repeatedly pick the job that finishes last (a *critical* job), remove it
//!    from the schedule, and re-insert every job with a conservative
//!    earliest-fit pass in the order of the current start times but with the
//!    critical job promoted to the front;
//! 3. keep the new schedule only if the makespan strictly decreased; stop
//!    after [`LocalSearch::max_rounds`] rounds or at a fixed point.
//!
//! Because the result of every accepted round is itself a list schedule
//! (earliest-fit insertion over some order), all the worst-case guarantees of
//! the paper still apply to the improved schedule — the pass can only help.

use crate::traits::Scheduler;
use resa_core::prelude::*;

/// A guarantee-preserving improvement wrapper around any scheduler.
#[derive(Debug, Clone)]
pub struct LocalSearch<S> {
    base: S,
    /// Maximum number of improvement rounds (each round is `O(n · profile)`).
    pub max_rounds: usize,
}

impl<S: Scheduler> LocalSearch<S> {
    /// Wrap `base` with the default round budget (16).
    pub fn new(base: S) -> Self {
        LocalSearch {
            base,
            max_rounds: 16,
        }
    }

    /// Wrap `base` with an explicit round budget.
    pub fn with_rounds(base: S, max_rounds: usize) -> Self {
        LocalSearch { base, max_rounds }
    }

    /// Access the wrapped scheduler.
    pub fn base(&self) -> &S {
        &self.base
    }

    /// Improvement statistics of the last run are not kept (the wrapper is
    /// stateless); this helper runs the improvement and also returns the
    /// number of accepted rounds, for the ablation experiments.
    pub fn schedule_with_stats(&self, instance: &ResaInstance) -> (Schedule, usize) {
        let mut best = self.base.schedule(instance);
        let mut best_cmax = best.makespan(instance);
        let mut accepted = 0;
        for _ in 0..self.max_rounds {
            let Some(candidate) = improve_once(instance, &best) else {
                break;
            };
            let cmax = candidate.makespan(instance);
            if cmax < best_cmax {
                best = candidate;
                best_cmax = cmax;
                accepted += 1;
            } else {
                break;
            }
        }
        (best, accepted)
    }
}

/// One improvement attempt: promote the critical job to the front and rebuild
/// the schedule by earliest-fit insertion in start-time order. Returns `None`
/// on empty schedules.
fn improve_once(instance: &ResaInstance, schedule: &Schedule) -> Option<Schedule> {
    if schedule.is_empty() {
        return None;
    }
    // Identify the critical job: latest completion, ties by latest start.
    let critical = schedule
        .placements()
        .iter()
        .max_by_key(|p| {
            let j = instance
                .job(p.job)
                .expect("schedules reference instance jobs");
            (p.start + j.duration, p.start)
        })
        .map(|p| p.job)?;
    // Re-insertion order: critical first, everything else by current start.
    let mut order: Vec<(Time, JobId)> = schedule
        .placements()
        .iter()
        .filter(|p| p.job != critical)
        .map(|p| (p.start, p.job))
        .collect();
    order.sort();
    let mut ids: Vec<JobId> = Vec::with_capacity(order.len() + 1);
    ids.push(critical);
    ids.extend(order.into_iter().map(|(_, id)| id));
    // Conservative earliest-fit rebuild on the indexed timeline.
    let mut profile = instance.timeline();
    let mut rebuilt = Schedule::new();
    for id in ids {
        let job = instance.job(id).expect("schedules reference instance jobs");
        let start = profile.earliest_fit(job.width, job.duration, job.release)?;
        profile
            .reserve(start, job.duration, job.width)
            .expect("earliest_fit guarantees capacity");
        rebuilt.place(id, start);
    }
    Some(rebuilt)
}

impl<S: Scheduler> Scheduler for LocalSearch<S> {
    fn name(&self) -> String {
        format!("local-search({})", self.base.name())
    }

    fn schedule(&self, instance: &ResaInstance) -> Schedule {
        self.schedule_with_stats(instance).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list_scheduling::Lsrc;
    use resa_core::instance::ResaInstanceBuilder;

    #[test]
    fn improves_the_graham_tightness_pattern() {
        // The classical 2 − 1/m pattern: LSRC(submission) is fooled, the
        // local search promotes the long job to the front and recovers the
        // optimum.
        let m = 4u32;
        let mut b = ResaInstanceBuilder::new(m);
        b = b.jobs((m * (m - 1)) as usize, 1, 1u64);
        b = b.job(1, m as u64);
        let inst = b.build().unwrap();
        let base = Lsrc::new();
        let improved = LocalSearch::new(base);
        let before = base.makespan(&inst);
        let (after, rounds) = improved.schedule_with_stats(&inst);
        assert!(after.is_valid(&inst));
        assert_eq!(before, Time(2 * m as u64 - 1));
        assert_eq!(after.makespan(&inst), Time(m as u64));
        assert!(rounds >= 1);
    }

    #[test]
    fn never_hurts() {
        for seed in 0..20u64 {
            // Pseudo-random small instances via a deterministic pattern.
            let mut b = ResaInstanceBuilder::new(6);
            for i in 0..8u64 {
                let w = 1 + ((seed + i * 7) % 5) as u32;
                let p = 1 + (seed * 3 + i) % 9;
                b = b.job(w, p);
            }
            if seed % 3 == 0 {
                b = b.reservation(3, 4u64, 5u64);
            }
            let inst = b.build().unwrap();
            let base = Lsrc::new();
            let wrapped = LocalSearch::new(base);
            let sched = wrapped.schedule(&inst);
            assert!(sched.is_valid(&inst), "seed {seed}");
            assert!(
                sched.makespan(&inst) <= base.makespan(&inst),
                "seed {seed}: local search must never hurt"
            );
        }
    }

    #[test]
    fn preserves_release_dates_and_reservations() {
        let inst = ResaInstanceBuilder::new(4)
            .job_released_at(2, 5u64, 10u64)
            .job(4, 3u64)
            .job(2, 8u64)
            .reservation(2, 6u64, 4u64)
            .build()
            .unwrap();
        let sched = LocalSearch::new(Lsrc::new()).schedule(&inst);
        assert!(sched.is_valid(&inst));
        assert!(sched.start_of(JobId(0)).unwrap() >= Time(10));
    }

    #[test]
    fn zero_rounds_is_the_base_schedule() {
        let inst = ResaInstanceBuilder::new(4)
            .job(2, 3u64)
            .job(2, 5u64)
            .build()
            .unwrap();
        let base = Lsrc::new();
        let wrapped = LocalSearch::with_rounds(base, 0);
        assert_eq!(
            wrapped.schedule(&inst).makespan(&inst),
            base.schedule(&inst).makespan(&inst)
        );
        assert_eq!(wrapped.base().name(), "LSRC(submission)");
    }

    #[test]
    fn empty_instance() {
        let inst = ResaInstanceBuilder::new(4).build().unwrap();
        let sched = LocalSearch::new(Lsrc::new()).schedule(&inst);
        assert!(sched.is_empty());
    }

    #[test]
    fn name_mentions_base() {
        assert_eq!(
            LocalSearch::new(Lsrc::new()).name(),
            "local-search(LSRC(submission))"
        );
    }
}
