//! Steady-state service benchmark: the PR-6 acceptance bench.
//!
//! Two measurements, both landed in `BENCH_pr6.json` at the workspace root:
//!
//! * **probe path** — an advancing-time speculation loop (checkpoint →
//!   `earliest_fit` → tentative reserve → rollback, with a committed
//!   reservation every few probes) on the cache-friendly flat
//!   [`AvailabilityTimeline`] vs the pinned pointer-layout
//!   [`ReferenceTimeline`]. The reference splits two breakpoints per probe
//!   and never merges them back, so its per-probe cost grows linearly with
//!   the probe count; the flat layout compacts degenerate segments at
//!   transaction boundaries and keeps descents `O(log B)` on a bounded `B`.
//!   Asserted ≥ 2x at full size (probe answers are asserted identical).
//! * **service steady state** — a sustained submit/query/reserve/cancel/
//!   advance mix against [`ScheduleService`] on both substrates, reporting
//!   ops/sec and p99 per-request latency (schedules asserted identical).
//!
//! `RESA_BENCH_QUICK=1` shrinks both parts to a CI-smoke size and relaxes
//! the wall-clock-sensitive ratio (shared runners are noisy); the full run
//! enforces the acceptance number.

use criterion::{criterion_group, criterion_main, Criterion};
use resa_analysis::prelude::to_json;
use resa_core::capacity::Speculate;
use resa_core::prelude::*;
use resa_sim::prelude::*;
use serde::Serialize;
use std::time::{Duration, Instant};

/// Problem sizes and assertion thresholds for one bench run.
struct Config {
    label: &'static str,
    machines: u32,
    /// Speculative probes in the probe-path loop.
    probes: usize,
    /// Rounds of the five-request service mix.
    service_rounds: usize,
    /// Asserted minimum probe-path speedup. ≥ 2x at full size; the quick CI
    /// smoke checks the machinery and the answer equivalence with a relaxed
    /// ratio.
    required_probe_speedup: f64,
}

fn config() -> Config {
    if std::env::var("RESA_BENCH_QUICK").is_ok() {
        Config {
            label: "quick",
            machines: 16,
            probes: 1_500,
            service_rounds: 400,
            required_probe_speedup: 1.2,
        }
    } else {
        Config {
            label: "full",
            machines: 16,
            probes: 6_000,
            service_rounds: 6_000,
            required_probe_speedup: 2.0,
        }
    }
}

#[derive(Debug, Serialize)]
struct ProbePathResult {
    probes: usize,
    machines: u32,
    optimized_ms: f64,
    reference_ms: f64,
    speedup: f64,
    required_speedup: f64,
    /// Final breakpoint counts: the structural story behind the ratio.
    optimized_breakpoints: usize,
    reference_breakpoints: usize,
}

#[derive(Debug, Serialize)]
struct ServiceSide {
    ops_per_sec: f64,
    p99_us: f64,
}

#[derive(Debug, Serialize)]
struct ServiceMixResult {
    requests: usize,
    machines: u32,
    optimized: ServiceSide,
    reference: ServiceSide,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    config: String,
    probe_path: ProbePathResult,
    service_steady_state: ServiceMixResult,
}

/// The descent-heavy probe loop: speculative earliest-fit probes at an
/// advancing frontier, with a committed narrow reservation every 16 probes
/// so the overlay keeps changing. Returns a checksum of the probe answers
/// (asserted identical across layouts) and the final breakpoint count.
fn probe_loop<S, F>(substrate: &mut S, probes: usize, breakpoints: F) -> (u64, usize)
where
    S: CapacityQuery + Speculate,
    F: Fn(&S) -> usize,
{
    let mut from = Time::ZERO;
    let mut checksum = 0u64;
    for i in 0..probes {
        let width = 2 + (i % 5) as u32;
        let dur = Dur(3 + (i % 11) as u64);
        let answer = substrate.speculate(|s| {
            let start = s.earliest_fit(width, dur, from)?;
            s.reserve(start, dur, width)
                .expect("earliest_fit certified the window");
            Some(start)
        });
        if let Some(start) = answer {
            checksum = checksum
                .wrapping_mul(31)
                .wrapping_add(start.ticks().wrapping_add(1));
        }
        if i % 16 == 0 {
            // Commit a real window well past the frontier; consecutive
            // commits are 32 ticks apart with 16-tick spans, so they never
            // stack and a width-1 window always fits.
            substrate
                .reserve(Time(from.ticks() + 64), Dur(16), 1)
                .expect("a narrow future window always fits");
        }
        from = Time(from.ticks() + 2);
    }
    (checksum, breakpoints(substrate))
}

fn measure_probe_path(cfg: &Config) -> ProbePathResult {
    // Best of three for the fast side: a scheduler stall during one short
    // optimized run must not sink the ratio (a stall during the slow
    // reference run only errs conservative, so it runs once).
    let mut optimized_time = Duration::MAX;
    let mut optimized = None;
    for _ in 0..3 {
        let mut flat = AvailabilityTimeline::constant(cfg.machines);
        let t0 = Instant::now();
        let run = probe_loop(&mut flat, cfg.probes, AvailabilityTimeline::breakpoints);
        optimized_time = optimized_time.min(t0.elapsed());
        optimized = Some(run);
    }
    let (flat_sum, flat_bp) = optimized.expect("three runs happened");

    let mut reference = ReferenceTimeline::constant(cfg.machines);
    let t1 = Instant::now();
    let (ref_sum, ref_bp) = probe_loop(&mut reference, cfg.probes, ReferenceTimeline::breakpoints);
    let reference_time = t1.elapsed();

    assert_eq!(
        flat_sum, ref_sum,
        "the flat layout must answer probes identically to the reference"
    );
    assert!(
        flat_bp < ref_bp,
        "compaction must keep the flat layout's breakpoint set smaller \
         ({flat_bp} vs {ref_bp})"
    );
    let speedup = reference_time.as_secs_f64() / optimized_time.as_secs_f64();
    println!(
        "probe path ({} probes / {} machines):\n\
         optimized  {optimized_time:?}  ({flat_bp} breakpoints at the end)\n\
         reference  {reference_time:?}  ({ref_bp} breakpoints at the end)\n\
         speedup    {speedup:.1}x",
        cfg.probes, cfg.machines,
    );
    ProbePathResult {
        probes: cfg.probes,
        machines: cfg.machines,
        optimized_ms: optimized_time.as_secs_f64() * 1e3,
        reference_ms: reference_time.as_secs_f64() * 1e3,
        speedup,
        required_speedup: cfg.required_probe_speedup,
        optimized_breakpoints: flat_bp,
        reference_breakpoints: ref_bp,
    }
}

/// One round of the five-request steady-state mix (all requests valid, every
/// reservation cancelled before its window starts — the same shape the
/// allocation-regression test pins to zero allocations per op).
fn service_round<C: CapacityQuery + Speculate>(
    svc: &mut ScheduleService<C>,
    i: usize,
    latencies: &mut Vec<u64>,
) {
    let mut timed = |svc: &mut ScheduleService<C>, f: &mut dyn FnMut(&mut ScheduleService<C>)| {
        let t0 = Instant::now();
        f(svc);
        latencies.push(t0.elapsed().as_nanos() as u64);
    };
    let width = 1 + (i % 6) as u32;
    let dur = Dur(1 + (i % 7) as u64);
    timed(svc, &mut |s| {
        s.submit(width, dur, None).expect("valid submission");
    });
    timed(svc, &mut |s| {
        s.query(2 + (i % 4) as u32, Dur(3), None)
            .expect("valid probe");
    });
    let start = Time(svc.now().ticks() + 16 + (i % 5) as u64);
    let mut rid = 0usize;
    timed(svc, &mut |s| {
        rid = s
            .reserve(1 + (i % 3) as u32, Dur(4), start)
            .expect("a narrow future window always fits")
            .0;
    });
    timed(svc, &mut |s| {
        s.cancel(rid).expect("the reservation is still pending");
    });
    let to = Time(svc.now().ticks() + 1 + (i % 3) as u64);
    timed(svc, &mut |s| {
        s.advance(to).expect("time only moves forward");
    });
}

fn run_service_mix<C: CapacityQuery + Speculate>(
    mut svc: ScheduleService<C>,
    rounds: usize,
) -> (ServiceSide, Schedule) {
    svc.ensure_capacity(rounds + 1, rounds + 1);
    let mut latencies = Vec::with_capacity(rounds * 5);
    let t0 = Instant::now();
    for i in 0..rounds {
        service_round(&mut svc, i, &mut latencies);
    }
    let total = t0.elapsed();
    latencies.sort_unstable();
    let p99 = latencies[(latencies.len() * 99) / 100 - 1];
    svc.drain();
    (
        ServiceSide {
            ops_per_sec: latencies.len() as f64 / total.as_secs_f64(),
            p99_us: p99 as f64 / 1e3,
        },
        svc.schedule().clone(),
    )
}

fn measure_service_mix(cfg: &Config) -> ServiceMixResult {
    let policy = ReferencePolicy::Easy;
    let mut flat_substrate = AvailabilityTimeline::constant(cfg.machines);
    flat_substrate.reserve_capacity(4096, 4096);
    let (optimized, flat_schedule) = run_service_mix(
        ScheduleService::new(policy, flat_substrate),
        cfg.service_rounds,
    );
    let (reference, ref_schedule) = run_service_mix(
        ScheduleService::new(policy, ReferenceTimeline::constant(cfg.machines)),
        cfg.service_rounds,
    );
    assert_eq!(
        flat_schedule, ref_schedule,
        "the substrates must schedule the mix identically"
    );
    let speedup = optimized.ops_per_sec / reference.ops_per_sec;
    println!(
        "service steady state ({} requests / {} machines):\n\
         optimized  {:.0} ops/s (p99 {:.1} µs)\n\
         reference  {:.0} ops/s (p99 {:.1} µs)\n\
         speedup    {speedup:.1}x",
        cfg.service_rounds * 5,
        cfg.machines,
        optimized.ops_per_sec,
        optimized.p99_us,
        reference.ops_per_sec,
        reference.p99_us,
    );
    ServiceMixResult {
        requests: cfg.service_rounds * 5,
        machines: cfg.machines,
        optimized,
        reference,
        speedup,
    }
}

/// Write the report next to the workspace `Cargo.toml`.
fn persist(report: &BenchReport) {
    let path = std::env::var("CARGO_MANIFEST_DIR")
        .map(|dir| format!("{dir}/../../BENCH_pr6.json"))
        .unwrap_or_else(|_| "BENCH_pr6.json".to_string());
    match std::fs::write(&path, to_json(report)) {
        Ok(()) => println!("[saved {path}]"),
        Err(e) => eprintln!("[could not save {path}: {e}]"),
    }
}

/// The acceptance check: ≥ 2x on the descent-heavy probe path, the service
/// mix reported alongside, everything persisted to `BENCH_pr6.json`.
fn acceptance(_c: &mut Criterion) {
    let cfg = config();
    println!("service config: {}", cfg.label);
    let probe_path = measure_probe_path(&cfg);
    let service_steady_state = measure_service_mix(&cfg);
    let report = BenchReport {
        config: cfg.label.to_string(),
        probe_path,
        service_steady_state,
    };
    persist(&report);
    assert!(
        report.probe_path.speedup >= report.probe_path.required_speedup,
        "acceptance: the flat timeline must be >= {:.1}x the pointer-layout \
         reference on the probe path (got {:.1}x)",
        report.probe_path.required_speedup,
        report.probe_path.speedup,
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    targets = acceptance
}
criterion_main!(benches);
